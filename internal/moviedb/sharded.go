package moviedb

import (
	"errors"
	"io"
	"sort"

	"xmovie/internal/stripe"
)

// DefaultShards is the stripe count NewShardedStore uses for shards <= 0:
// enough stripes that thousands of concurrent sessions rarely collide on
// one lock, small enough that List's merge stays cheap.
const DefaultShards = 64

// ShardedStore is a Store striped over independent backing shards, keyed
// by movie name. Per-movie operations touch exactly one shard's lock, so
// sessions operating on different movies proceed in parallel instead of
// serializing on a single store mutex; only List crosses shards. Shards
// are MemStores for the in-memory form (NewShardedStore) and DiskStores
// for the durable form (OpenShardedDiskStore).
type ShardedStore struct {
	shards []Store
	mask   uint32
}

var _ Store = (*ShardedStore)(nil)

// NewShardedStore returns an empty in-memory store striped over the given
// number of shards, rounded up to a power of two (<= 0 selects
// DefaultShards).
func NewShardedStore(shards int) *ShardedStore {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	stores := make([]Store, n)
	for i := range stores {
		stores[i] = NewMemStore()
	}
	return newShardedOver(stores)
}

// newShardedOver stripes over pre-built shards; len(stores) must be a
// power of two.
func newShardedOver(stores []Store) *ShardedStore {
	return &ShardedStore{shards: stores, mask: uint32(len(stores) - 1)}
}

// Shards returns the stripe count.
func (s *ShardedStore) Shards() int { return len(s.shards) }

// shard selects the stripe for a movie name (FNV-1a).
func (s *ShardedStore) shard(name string) Store {
	return s.shards[stripe.FNV32a(name)&s.mask]
}

// Create implements Store.
func (s *ShardedStore) Create(m *Movie) error { return s.shard(m.Name).Create(m) }

// Get implements Store.
func (s *ShardedStore) Get(name string) (*Movie, error) { return s.shard(name).Get(name) }

// Delete implements Store.
func (s *ShardedStore) Delete(name string) error { return s.shard(name).Delete(name) }

// SetAttrs implements Store.
func (s *ShardedStore) SetAttrs(name string, updates Attributes) error {
	return s.shard(name).SetAttrs(name, updates)
}

// AppendFrames implements Store.
func (s *ShardedStore) AppendFrames(name string, frames [][]byte) error {
	return s.shard(name).AppendFrames(name, frames)
}

// Record implements Store.
func (s *ShardedStore) Record(name string) (Recorder, error) {
	return s.shard(name).Record(name)
}

// List implements Store: a merge over the shards' (individually sorted)
// listings. The result is a consistent-per-shard, not globally atomic,
// snapshot — names created or deleted concurrently may or may not appear.
func (s *ShardedStore) List() []string {
	var out []string
	for _, sh := range s.shards {
		out = append(out, sh.List()...)
	}
	sort.Strings(out)
	return out
}

// Close closes every shard that holds resources (disk shards; memory
// shards have none).
func (s *ShardedStore) Close() error {
	var errs []error
	for _, sh := range s.shards {
		if c, ok := sh.(io.Closer); ok {
			if err := c.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}
