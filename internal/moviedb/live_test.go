package moviedb

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// Store-level tests for the readable-while-appendable contract: a source
// opened on a recording movie follows the live tail instead of hitting
// io.EOF, late joiners replay history and hand off to the live window at
// the boundary frame, and only sealing the recording ends the stream.

// liveStores builds each store flavour fresh per subtest.
func liveStores(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Run("mem", func(t *testing.T) {
		fn(t, NewMemStore())
	})
	t.Run("disk", func(t *testing.T) {
		s, err := OpenDiskStore(t.TempDir(), DiskConfig{ChunkFrames: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		fn(t, s)
	})
}

// liveFrame builds a deterministic, recognisable payload for index i.
func liveFrame(i int) []byte {
	return bytes.Repeat([]byte{byte(i), byte(i >> 8)}, 24)
}

func TestLiveTailFollowsRecorder(t *testing.T) {
	liveStores(t, func(t *testing.T, s Store) {
		const total = 120
		if err := s.Create(&Movie{Name: "take"}); err != nil {
			t.Fatal(err)
		}
		rec, err := s.Record("take")
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Get("take")
		if err != nil {
			t.Fatal(err)
		}
		src := m.Open()
		defer src.Close()

		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer rec.Close()
			for i := 0; i < total; i += 5 {
				batch := make([][]byte, 5)
				for j := range batch {
					batch[j] = liveFrame(i + j)
				}
				if _, err := rec.Append(batch); err != nil {
					t.Error(err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()

		// The viewer starts before a single frame exists and must block at
		// the live edge, never see io.EOF mid-broadcast, and drain exactly
		// the published frames once the recorder seals.
		got := drain(t, src)
		wg.Wait()
		if len(got) != total {
			t.Fatalf("viewer drained %d frames, want %d", len(got), total)
		}
		for i := range got {
			if !bytes.Equal(got[i], liveFrame(i)) {
				t.Fatalf("frame %d differs from what the recorder published", i)
			}
		}
		// Sealed: a fresh source sees a normal finite movie.
		m, err = s.Get("take")
		if err != nil {
			t.Fatal(err)
		}
		if m.FrameCount() != total {
			t.Fatalf("sealed count = %d", m.FrameCount())
		}
	})
}

func TestLateJoinerHandoff(t *testing.T) {
	liveStores(t, func(t *testing.T, s Store) {
		if err := s.Create(&Movie{Name: "join"}); err != nil {
			t.Fatal(err)
		}
		rec, err := s.Record("join")
		if err != nil {
			t.Fatal(err)
		}
		// Publish enough history that, on disk, the joiner replays whole
		// chunks from storage well behind the live window's ring.
		history := 40
		for i := 0; i < history; i++ {
			if _, err := rec.Append([][]byte{liveFrame(i)}); err != nil {
				t.Fatal(err)
			}
		}
		m, err := s.Get("join")
		if err != nil {
			t.Fatal(err)
		}
		src := m.Open()
		defer src.Close()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer rec.Close()
			for i := history; i < history+30; i++ {
				if _, err := rec.Append([][]byte{liveFrame(i)}); err != nil {
					t.Error(err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
		got := drain(t, src)
		wg.Wait()
		if len(got) != history+30 {
			t.Fatalf("late joiner drained %d frames, want %d", len(got), history+30)
		}
		for i := range got {
			if !bytes.Equal(got[i], liveFrame(i)) {
				t.Fatalf("frame %d differs across the history/live handoff", i)
			}
		}
	})
}

func TestDeleteRefusedWhileLive(t *testing.T) {
	liveStores(t, func(t *testing.T, s Store) {
		if err := s.Create(&Movie{Name: "onair"}); err != nil {
			t.Fatal(err)
		}
		rec, err := s.Record("onair")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rec.Append([][]byte{liveFrame(0)}); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete("onair"); !errors.Is(err, ErrLive) {
			t.Fatalf("delete during recording = %v, want ErrLive", err)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete("onair"); err != nil {
			t.Fatalf("delete after seal = %v", err)
		}
	})
}

func TestCancelWaitUnblocksViewer(t *testing.T) {
	liveStores(t, func(t *testing.T, s Store) {
		if err := s.Create(&Movie{Name: "hang"}); err != nil {
			t.Fatal(err)
		}
		rec, err := s.Record("hang")
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Close()
		m, err := s.Get("hang")
		if err != nil {
			t.Fatal(err)
		}
		src := m.Open()
		defer src.Close()
		done := make(chan error, 1)
		go func() {
			_, err := src.Next()
			done <- err
		}()
		time.Sleep(5 * time.Millisecond)
		src.(WaitCanceler).CancelWait()
		select {
		case err := <-done:
			if err != io.EOF {
				t.Fatalf("cancelled wait returned %v, want io.EOF", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("viewer still blocked after CancelWait")
		}
	})
}

func TestRecordSecondPhaseResumesLive(t *testing.T) {
	// A movie may go live, seal, and go live again: the second Record
	// session installs a fresh window and open sources follow it.
	liveStores(t, func(t *testing.T, s Store) {
		if err := s.Create(&Movie{Name: "twice"}); err != nil {
			t.Fatal(err)
		}
		for phase := 0; phase < 2; phase++ {
			rec, err := s.Record("twice")
			if err != nil {
				t.Fatalf("phase %d: %v", phase, err)
			}
			for i := 0; i < 10; i++ {
				if _, err := rec.Append([][]byte{liveFrame(phase*10 + i)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}
		}
		m, err := s.Get("twice")
		if err != nil {
			t.Fatal(err)
		}
		src := m.Open()
		defer src.Close()
		got := drain(t, src)
		if len(got) != 20 {
			t.Fatalf("drained %d frames over two phases", len(got))
		}
		for i := range got {
			if !bytes.Equal(got[i], liveFrame(i)) {
				t.Fatalf("frame %d differs", i)
			}
		}
	})
}

func TestConcurrentRecorderSessionsShareWindow(t *testing.T) {
	// Two recorder handles on the same movie interleave appends through one
	// shared live window; the movie seals only when the last one closes.
	liveStores(t, func(t *testing.T, s Store) {
		if err := s.Create(&Movie{Name: "duet"}); err != nil {
			t.Fatal(err)
		}
		a, err := s.Record("duet")
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Record("duet")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Append([][]byte{liveFrame(0)}); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Append([][]byte{liveFrame(1)}); err != nil {
			t.Fatal(err)
		}
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		// Still live: b holds the window open.
		if err := s.Delete("duet"); !errors.Is(err, ErrLive) {
			t.Fatalf("delete with one recorder left = %v, want ErrLive", err)
		}
		n, err := b.Append([][]byte{liveFrame(2)})
		if err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Fatalf("length after three appends = %d", n)
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		m, err := s.Get("duet")
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, m.Open())
		if len(got) != 3 {
			t.Fatalf("sealed movie has %d frames", len(got))
		}
		for i := range got {
			if !bytes.Equal(got[i], liveFrame(i)) {
				t.Fatalf("frame %d differs (%v)", i, fmt.Sprintf("% x", got[i][:4]))
			}
		}
	})
}
