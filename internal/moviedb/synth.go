package moviedb

import (
	"fmt"
	"io"
)

// SynthConfig describes a deterministic synthetic movie. It substitutes for
// the digitized movie material of the XMovie testbed: frames are
// pseudo-random but reproducible, sized like the named format, so stream
// experiments exercise realistic data volumes.
type SynthConfig struct {
	Name      string
	Format    Format
	FrameRate int
	Frames    int
	// FrameSize overrides the per-format default frame size in bytes.
	FrameSize int
	// ChunkFrames is the lazy source's chunk window: the number of frames
	// generated and resident in memory at once (0 = DefaultChunkFrames).
	// Peak per-source memory is ChunkFrames × FrameSize regardless of
	// movie length.
	ChunkFrames int
	Attrs       Attributes
}

// DefaultChunkFrames is the chunk window used when SynthConfig.ChunkFrames
// is zero: large enough to amortize refills, small enough that thousands
// of concurrent streams stay cheap.
const DefaultChunkFrames = 16

// defaultFrameSize returns a plausible compressed frame size for a format
// at early-90s "quarter-screen" resolution.
func defaultFrameSize(f Format) int {
	switch f {
	case FormatMJPEG:
		return 8 * 1024
	case FormatXMovieRaw:
		return 320 * 240 / 4 // 2-bit color-mapped raw, as in XMovie
	case FormatMPEG1:
		return 4 * 1024
	default:
		return 4 * 1024
	}
}

// normalize fills the config defaults shared by the lazy and eager paths.
func (cfg SynthConfig) normalize() SynthConfig {
	if cfg.FrameRate == 0 {
		cfg.FrameRate = 25
	}
	if cfg.Frames == 0 {
		cfg.Frames = 100
	}
	if cfg.FrameSize == 0 {
		cfg.FrameSize = defaultFrameSize(cfg.Format)
	}
	if cfg.ChunkFrames <= 0 {
		cfg.ChunkFrames = DefaultChunkFrames
	}
	return cfg
}

// nameSeed derives the generator seed from the movie name.
func nameSeed(name string) uint64 {
	seed := uint64(0x9e3779b97f4a7c15)
	for _, c := range name {
		seed = seed*131 + uint64(c)
	}
	return seed
}

// genFrame fills dst with frame i's deterministic payload (an xorshift64*
// stream keyed by seed and frame index).
func genFrame(dst []byte, seed uint64, i int64) {
	size := len(dst)
	s := seed ^ uint64(i)*0xbf58476d1ce4e5b9
	for j := 0; j < size; j += 8 {
		// xorshift64*
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		v := s * 0x2545f4914f6cdd1d
		for k := 0; k < 8 && j+k < size; k++ {
			dst[j+k] = byte(v >> (8 * k))
		}
	}
}

// SynthContent is lazy movie content: frames are generated on demand into
// a reused chunk buffer instead of being materialized up front. A 10k-frame
// movie opened through SynthContent keeps at most ChunkFrames frames
// resident per source, whatever its length.
type SynthContent struct {
	seed   uint64
	frames int64
	size   int
	chunk  int
}

var _ Content = (*SynthContent)(nil)

// NewSynthContent builds lazy content from cfg (defaults applied as in
// Synthesize).
func NewSynthContent(cfg SynthConfig) *SynthContent {
	cfg = cfg.normalize()
	return &SynthContent{
		seed:   nameSeed(cfg.Name),
		frames: int64(cfg.Frames),
		size:   cfg.FrameSize,
		chunk:  cfg.ChunkFrames,
	}
}

// Len implements Content.
func (c *SynthContent) Len() int64 { return c.frames }

// FrameSize returns the per-frame payload size in bytes.
func (c *SynthContent) FrameSize() int { return c.size }

// ChunkFrames returns the chunk-window size in frames.
func (c *SynthContent) ChunkFrames() int { return c.chunk }

// Open implements Content.
func (c *SynthContent) Open() FrameSource { return &synthSource{c: c, hi: -1, lo: -1} }

// synthSource is one stream's cursor over SynthContent. The arena holds
// the currently materialized chunk window [lo, hi); refills regenerate it
// in place, so the source's footprint is bounded by chunk × frame size.
type synthSource struct {
	c     *SynthContent
	pos   int64
	arena []byte
	lo    int64
	hi    int64
}

var (
	_ FrameSource      = (*synthSource)(nil)
	_ ResidentReporter = (*synthSource)(nil)
)

func (s *synthSource) Len() int64 { return s.c.frames }
func (s *synthSource) Pos() int64 { return s.pos }

func (s *synthSource) Next() ([]byte, error) {
	if s.pos >= s.c.frames {
		return nil, io.EOF
	}
	if s.pos < s.lo || s.pos >= s.hi {
		s.refill(s.pos)
	}
	i := int(s.pos - s.lo)
	f := s.arena[i*s.c.size : (i+1)*s.c.size]
	s.pos++
	return f, nil
}

// refill regenerates the chunk window starting at frame from, reusing the
// arena allocation.
func (s *synthSource) refill(from int64) {
	n := int64(s.c.chunk)
	if from+n > s.c.frames {
		n = s.c.frames - from
	}
	need := int(n) * s.c.size
	if cap(s.arena) < need {
		s.arena = make([]byte, need)
	} else {
		s.arena = s.arena[:need]
	}
	for k := int64(0); k < n; k++ {
		genFrame(s.arena[int(k)*s.c.size:int(k+1)*s.c.size], s.c.seed, from+k)
	}
	s.lo, s.hi = from, from+n
}

func (s *synthSource) SeekTo(pos int64) error {
	if pos < 0 || pos > s.c.frames {
		return fmt.Errorf("moviedb: seek to %d outside 0..%d", pos, s.c.frames)
	}
	s.pos = pos
	return nil
}

func (s *synthSource) Close() error {
	s.arena = nil
	s.lo, s.hi = -1, -1
	return nil
}

// MaxResident implements ResidentReporter: the peak chunk-buffer footprint
// in bytes this source has held.
func (s *synthSource) MaxResident() int { return cap(s.arena) }

// synthMovie assembles the movie shell (attributes, format, rate) shared
// by the lazy and eager constructors.
func synthMovie(cfg SynthConfig) *Movie {
	attrs := cfg.Attrs.Clone()
	if attrs == nil {
		attrs = make(Attributes)
	}
	if _, ok := attrs[AttrTitle]; !ok {
		attrs[AttrTitle] = cfg.Name
	}
	attrs[AttrFormat] = cfg.Format.String()
	return &Movie{
		Name:      cfg.Name,
		Format:    cfg.Format,
		FrameRate: cfg.FrameRate,
		Attrs:     attrs,
	}
}

// SynthesizeLazy builds a deterministic movie whose frames are generated
// on demand: nothing is materialized until a stream pulls frames, and each
// open source keeps at most the chunk window resident. This is the form
// the streaming data plane serves from.
func SynthesizeLazy(cfg SynthConfig) *Movie {
	cfg = cfg.normalize()
	m := synthMovie(cfg)
	m.Content = NewSynthContent(cfg)
	return m
}

// Synthesize builds a deterministic movie with every frame materialized —
// the historical slice API, now a thin adapter that drains the lazy
// generator. The same configuration always yields byte-identical frames
// whichever constructor is used, so tests can verify end-to-end delivery.
func Synthesize(cfg SynthConfig) *Movie {
	cfg = cfg.normalize()
	m := synthMovie(cfg)
	src := NewSynthContent(cfg).Open()
	frames := make([][]byte, 0, cfg.Frames)
	for {
		f, err := src.Next()
		if err == io.EOF {
			break
		}
		cp := make([]byte, len(f))
		copy(cp, f)
		frames = append(frames, cp)
	}
	m.Frames = frames
	return m
}

// MustSeed fills a store with n synthetic movies named prefix-0..n-1,
// panicking on store errors (intended for tests and examples).
func MustSeed(s Store, prefix string, n, framesEach int) []string {
	names := make([]string, n)
	formats := []Format{FormatMJPEG, FormatXMovieRaw, FormatMPEG1}
	for i := range names {
		name := fmt.Sprintf("%s-%d", prefix, i)
		m := Synthesize(SynthConfig{
			Name:   name,
			Format: formats[i%len(formats)],
			Frames: framesEach,
			Attrs: Attributes{
				AttrYear: fmt.Sprintf("%d", 1990+i%5),
			},
		})
		if err := s.Create(m); err != nil {
			panic(err)
		}
		names[i] = name
	}
	return names
}
