package moviedb

import "fmt"

// SynthConfig describes a deterministic synthetic movie. It substitutes for
// the digitized movie material of the XMovie testbed: frames are
// pseudo-random but reproducible, sized like the named format, so stream
// experiments exercise realistic data volumes.
type SynthConfig struct {
	Name      string
	Format    Format
	FrameRate int
	Frames    int
	// FrameSize overrides the per-format default frame size in bytes.
	FrameSize int
	Attrs     Attributes
}

// defaultFrameSize returns a plausible compressed frame size for a format
// at early-90s "quarter-screen" resolution.
func defaultFrameSize(f Format) int {
	switch f {
	case FormatMJPEG:
		return 8 * 1024
	case FormatXMovieRaw:
		return 320 * 240 / 4 // 2-bit color-mapped raw, as in XMovie
	case FormatMPEG1:
		return 4 * 1024
	default:
		return 4 * 1024
	}
}

// Synthesize builds a deterministic movie from the configuration. The same
// configuration always yields byte-identical frames (an xorshift generator
// seeded from the name), so tests can verify end-to-end delivery.
func Synthesize(cfg SynthConfig) *Movie {
	if cfg.FrameRate == 0 {
		cfg.FrameRate = 25
	}
	if cfg.Frames == 0 {
		cfg.Frames = 100
	}
	size := cfg.FrameSize
	if size == 0 {
		size = defaultFrameSize(cfg.Format)
	}
	seed := uint64(0x9e3779b97f4a7c15)
	for _, c := range cfg.Name {
		seed = seed*131 + uint64(c)
	}
	frames := make([][]byte, cfg.Frames)
	for i := range frames {
		f := make([]byte, size)
		s := seed ^ uint64(i)*0xbf58476d1ce4e5b9
		for j := 0; j < size; j += 8 {
			// xorshift64*
			s ^= s >> 12
			s ^= s << 25
			s ^= s >> 27
			v := s * 0x2545f4914f6cdd1d
			for k := 0; k < 8 && j+k < size; k++ {
				f[j+k] = byte(v >> (8 * k))
			}
		}
		frames[i] = f
	}
	attrs := cfg.Attrs.Clone()
	if attrs == nil {
		attrs = make(Attributes)
	}
	if _, ok := attrs[AttrTitle]; !ok {
		attrs[AttrTitle] = cfg.Name
	}
	attrs[AttrFormat] = cfg.Format.String()
	return &Movie{
		Name:      cfg.Name,
		Format:    cfg.Format,
		FrameRate: cfg.FrameRate,
		Attrs:     attrs,
		Frames:    frames,
	}
}

// MustSeed fills a store with n synthetic movies named prefix-0..n-1,
// panicking on store errors (intended for tests and examples).
func MustSeed(s Store, prefix string, n, framesEach int) []string {
	names := make([]string, n)
	formats := []Format{FormatMJPEG, FormatXMovieRaw, FormatMPEG1}
	for i := range names {
		name := fmt.Sprintf("%s-%d", prefix, i)
		m := Synthesize(SynthConfig{
			Name:   name,
			Format: formats[i%len(formats)],
			Frames: framesEach,
			Attrs: Attributes{
				AttrYear: fmt.Sprintf("%d", 1990+i%5),
			},
		})
		if err := s.Create(m); err != nil {
			panic(err)
		}
		names[i] = name
	}
	return names
}
