package moviedb

import (
	"bytes"
	"io"
	"testing"
)

// drain pulls every remaining frame out of a source, copying payloads.
func drain(t *testing.T, src FrameSource) [][]byte {
	t.Helper()
	var out [][]byte
	for {
		f, err := src.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, append([]byte(nil), f...))
	}
}

func TestLazySynthMatchesEager(t *testing.T) {
	cfg := SynthConfig{Name: "twin", Frames: 77, FrameSize: 333, ChunkFrames: 8}
	eager := Synthesize(cfg)
	lazy := SynthesizeLazy(cfg)
	if lazy.Frames != nil {
		t.Fatal("lazy movie materialized frames")
	}
	if lazy.FrameCount() != 77 || eager.FrameCount() != 77 {
		t.Fatalf("frame counts: lazy %d eager %d", lazy.FrameCount(), eager.FrameCount())
	}
	got := drain(t, lazy.Open())
	if len(got) != len(eager.Frames) {
		t.Fatalf("lazy yielded %d frames, eager %d", len(got), len(eager.Frames))
	}
	for i := range got {
		if !bytes.Equal(got[i], eager.Frames[i]) {
			t.Fatalf("frame %d differs between lazy and eager synthesis", i)
		}
	}
}

func TestSynthSourceChunkWindowBound(t *testing.T) {
	cfg := SynthConfig{Name: "bounded", Frames: 10000, FrameSize: 256, ChunkFrames: 32}
	m := SynthesizeLazy(cfg)
	src := m.Open()
	n := 0
	for {
		if _, err := src.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 10000 {
		t.Fatalf("streamed %d frames", n)
	}
	rr := src.(ResidentReporter)
	if max := rr.MaxResident(); max > 32*256 {
		t.Fatalf("resident %d bytes exceeds chunk window %d", max, 32*256)
	}
}

func TestSynthSourceSeek(t *testing.T) {
	cfg := SynthConfig{Name: "seeker", Frames: 100, FrameSize: 64, ChunkFrames: 7}
	m := SynthesizeLazy(cfg)
	eager := Synthesize(cfg)
	src := m.Open()
	for _, pos := range []int64{50, 3, 99, 0, 42} {
		if err := src.SeekTo(pos); err != nil {
			t.Fatal(err)
		}
		if src.Pos() != pos {
			t.Fatalf("pos = %d after seek to %d", src.Pos(), pos)
		}
		f, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(f, eager.Frames[pos]) {
			t.Fatalf("frame at %d differs after seek", pos)
		}
	}
	// Seek to Len is valid and yields EOF; out of range is rejected.
	if err := src.SeekTo(100); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("next at end = %v", err)
	}
	if err := src.SeekTo(101); err == nil {
		t.Fatal("seek past end accepted")
	}
	if err := src.SeekTo(-1); err == nil {
		t.Fatal("negative seek accepted")
	}
}

func TestSliceContentAdapter(t *testing.T) {
	m := Synthesize(SynthConfig{Name: "slice", Frames: 10, FrameSize: 16})
	src := m.Open()
	if src.Len() != 10 {
		t.Fatalf("len = %d", src.Len())
	}
	got := drain(t, src)
	for i := range got {
		if !bytes.Equal(got[i], m.Frames[i]) {
			t.Fatalf("frame %d differs through slice source", i)
		}
	}
}

func TestStoreLazyMovie(t *testing.T) {
	s := NewMemStore()
	if err := s.Create(SynthesizeLazy(SynthConfig{Name: "lz", Frames: 20, FrameSize: 8})); err != nil {
		t.Fatal(err)
	}
	m, err := s.Get("lz")
	if err != nil {
		t.Fatal(err)
	}
	if m.Frames != nil || m.Content == nil {
		t.Fatalf("lazy movie came back materialized: frames %d content %v", len(m.Frames), m.Content)
	}
	if m.FrameCount() != 20 {
		t.Fatalf("frame count %d", m.FrameCount())
	}
	if got := len(drain(t, m.Open())); got != 20 {
		t.Fatalf("streamed %d frames from stored lazy movie", got)
	}
	// Appending to lazy content stays lazy (record-onto-synthetic): the
	// base generator keeps serving the first 20 frames byte-identically
	// and the appended frame follows them, with nothing materialized.
	want := Synthesize(SynthConfig{Name: "lz", Frames: 20, FrameSize: 8}).Frames
	if err := s.AppendFrames("lz", [][]byte{{1}}); err != nil {
		t.Fatalf("append to lazy movie: %v", err)
	}
	m, err = s.Get("lz")
	if err != nil {
		t.Fatal(err)
	}
	if m.Content == nil || m.FrameCount() != 21 {
		t.Fatalf("after append: content %v, count %d", m.Content, m.FrameCount())
	}
	got := drain(t, m.Open())
	if len(got) != 21 {
		t.Fatalf("after append: streamed %d frames", len(got))
	}
	for i, f := range want {
		if !bytes.Equal(got[i], f) {
			t.Fatalf("base frame %d differs from lazy original", i)
		}
	}
	if !bytes.Equal(got[20], []byte{1}) {
		t.Fatalf("appended frame = %v", got[20])
	}
}
