package moviedb

import (
	"container/list"
	"sync"
)

// DefaultDiskCacheBytes is the chunk-cache capacity used when DiskConfig
// leaves CacheBytes zero: large enough that a handful of hot movies stream
// entirely from memory, small enough to be irrelevant next to the movies
// themselves.
const DefaultDiskCacheBytes = 8 << 20

// chunkKey identifies one cached chunk. The movie component is a process-
// unique instance id (not the name), so deleting and recreating a movie can
// never serve stale bytes. The frame count disambiguates the tail chunk:
// full chunks are append-stable, but a partial tail chunk grows with every
// AppendFrames, so snapshots taken at different lengths key different
// entries and the shorter ones simply age out.
type chunkKey struct {
	movie  uint64
	chunk  int64
	frames int32
}

type chunkEntry struct {
	key  chunkKey
	data []byte
}

// CacheStats counts chunk-cache outcomes since the cache was created.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// Bytes is the current resident size; CapBytes the configured bound.
	Bytes    int64
	CapBytes int64
}

// ChunkCache is a bounded LRU over disk-segment chunks, shared by every
// source a DiskStore (or a whole sharded set of disk stores) hands out.
// Cached chunk buffers are immutable once inserted: sources slice frames
// straight out of them, and eviction only drops the cache's reference, so
// an in-flight source keeps its current chunk alive while the next reader
// re-loads from disk. The cache therefore bounds cache memory, while each
// source independently holds at most one chunk window — the same resident
// guarantee the lazy synthetic sources give.
type ChunkCache struct {
	mu       sync.Mutex
	capBytes int64
	used     int64
	ll       *list.List // front = most recent; values are *chunkEntry
	entries  map[chunkKey]*list.Element

	hits, misses, evictions int64
}

// NewChunkCache returns an empty cache bounded to capBytes (<= 0 selects
// DefaultDiskCacheBytes).
func NewChunkCache(capBytes int64) *ChunkCache {
	if capBytes <= 0 {
		capBytes = DefaultDiskCacheBytes
	}
	return &ChunkCache{
		capBytes: capBytes,
		ll:       list.New(),
		entries:  make(map[chunkKey]*list.Element),
	}
}

// get returns the cached chunk for key, promoting it to most-recent.
func (c *ChunkCache) get(key chunkKey) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*chunkEntry).data, true
}

// put inserts a loaded chunk, evicting least-recently-used entries until
// the capacity bound holds. Chunks larger than the whole cache are not
// admitted (the source still holds them; they are just not shared).
func (c *ChunkCache) put(key chunkKey, data []byte) {
	size := int64(len(data))
	if size > c.capBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[key]; dup {
		return // a concurrent loader won the race; identical bytes
	}
	for c.used+size > c.capBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*chunkEntry)
		c.ll.Remove(back)
		delete(c.entries, ent.key)
		c.used -= int64(len(ent.data))
		c.evictions++
	}
	c.entries[key] = c.ll.PushFront(&chunkEntry{key: key, data: data})
	c.used += size
}

// invalidateMovie drops every cached chunk of one movie instance (delete
// path). O(entries); deletes are rare next to reads.
func (c *ChunkCache) invalidateMovie(movie uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*chunkEntry)
		if ent.key.movie == movie {
			c.ll.Remove(el)
			delete(c.entries, ent.key)
			c.used -= int64(len(ent.data))
		}
		el = next
	}
}

// Stats snapshots the cache counters.
func (c *ChunkCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Bytes:     c.used,
		CapBytes:  c.capBytes,
	}
}
