// Package moviedb stores digital movies: frames plus descriptive attributes.
//
// It is the paper's "movie database" (Fig. 2) that MCAM server entities
// serve streams from, and the synthetic-movie generator substitutes for the
// production movie material the XMovie project used.
//
// Movies are readable while appendable: Store.Record opens a live append
// session, and FrameSources opened on the same movie follow its growing
// tail through the movie's LiveWindow instead of ending early — see
// live.go and the Content/FrameSource contract in source.go.
package moviedb

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Format identifies a movie's digital image format.
type Format int

// Formats from the XMovie environment.
const (
	FormatMJPEG Format = iota + 1
	FormatXMovieRaw
	FormatMPEG1
)

// String returns the format name.
func (f Format) String() string {
	switch f {
	case FormatMJPEG:
		return "M-JPEG"
	case FormatXMovieRaw:
		return "XMovie-Raw"
	case FormatMPEG1:
		return "MPEG-1"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// Attributes are the descriptive properties kept in the movie directory:
// free-form key/value pairs plus well-known keys.
type Attributes map[string]string

// Well-known attribute keys.
const (
	AttrTitle    = "title"
	AttrYear     = "year"
	AttrDirector = "director"
	AttrFormat   = "format"
	AttrLocation = "location"
)

// Clone returns a copy of the attribute set.
func (a Attributes) Clone() Attributes {
	out := make(Attributes, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Movie is one stored movie.
type Movie struct {
	Name      string
	Format    Format
	FrameRate int // frames per second
	Attrs     Attributes
	// Frames holds materialized frame payloads. For lazy movies (Content
	// non-nil) it stays nil; the data plane reads through Open either way.
	Frames [][]byte
	// Content, when non-nil, is the movie's lazy frame payload; it takes
	// precedence over Frames. Store.Get always populates it with a
	// store-backed Content whose sources follow the movie's live tail;
	// movies built by hand may carry an immutable Content (SynthContent,
	// SliceContent) instead.
	Content Content
}

// FrameCount returns the number of stored frames, materialized or lazy.
// On a live movie this is the length at the moment of the call.
func (m *Movie) FrameCount() int64 {
	if m.Content != nil {
		return m.Content.Len()
	}
	return int64(len(m.Frames))
}

// Open returns a fresh FrameSource over the movie's content, positioned at
// frame 0. Every open is independent, so many streams can play the same
// movie concurrently; lazy movies materialize at most one chunk window per
// source. A source opened on a recording movie follows the live tail (see
// the FrameSource contract in source.go).
func (m *Movie) Open() FrameSource {
	if m.Content != nil {
		return m.Content.Open()
	}
	return SliceContent(m.Frames).Open()
}

// Duration returns the playing time in whole milliseconds.
func (m *Movie) DurationMillis() int64 {
	if m.FrameRate <= 0 {
		return 0
	}
	return m.FrameCount() * 1000 / int64(m.FrameRate)
}

// Errors returned by stores. ErrLive lives in live.go.
var (
	ErrNotFound = errors.New("moviedb: no such movie")
	ErrExists   = errors.New("moviedb: movie already exists")
)

// Store is a movie repository.
type Store interface {
	// Create inserts a new movie; ErrExists if the name is taken.
	Create(m *Movie) error
	// Get returns the movie by name.
	Get(name string) (*Movie, error)
	// Delete removes the movie by name. A movie with an open recording
	// session refuses with ErrLive.
	Delete(name string) error
	// List returns all movie names, sorted.
	List() []string
	// SetAttrs merges attribute updates into the named movie (a value of
	// "" deletes the key).
	SetAttrs(name string, updates Attributes) error
	// AppendFrames adds recorded frames to the named movie: a one-shot
	// recording session (Record + Append + Close).
	AppendFrames(name string, frames [][]byte) error
	// Record opens a live append session on the named movie. While the
	// session is open the movie is live: sources follow its growing tail
	// and Delete refuses. Sessions on the same movie share one live
	// phase, which seals when the last of them closes.
	Record(name string) (Recorder, error)
}

// MemStore is an in-memory Store, safe for concurrent use. Each movie
// carries its own lock, so appends to one live movie never stall reads of
// another.
type MemStore struct {
	mu     sync.RWMutex
	movies map[string]*memMovie
}

// memMovie is the store's representation of one movie: an optional
// immutable lazy base (the content the movie was created with) plus the
// frames appended after it, and the live window of the current recording
// phase, if any.
type memMovie struct {
	name string

	mu        sync.Mutex
	format    Format
	frameRate int
	attrs     Attributes
	base      Content  // immutable; nil for eager movies
	baseLen   int64    // base.Len(), frozen at Create
	frames    [][]byte // frames after the base (all frames when base == nil)
	live      *LiveWindow
}

// total returns the movie length; callers hold mm.mu.
func (mm *memMovie) total() int64 { return mm.baseLen + int64(len(mm.frames)) }

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{movies: make(map[string]*memMovie)}
}

// Create implements Store. Frame payloads are copied in as slice headers;
// when m carries a lazy Content it becomes the movie's immutable base and
// m.Frames is ignored (Content takes precedence, as in Movie).
func (s *MemStore) Create(m *Movie) error {
	if m.Name == "" {
		return fmt.Errorf("moviedb: empty movie name")
	}
	mm := &memMovie{
		name:      m.Name,
		format:    m.Format,
		frameRate: m.FrameRate,
		attrs:     m.Attrs.Clone(),
		base:      m.Content,
	}
	if mm.base != nil {
		mm.baseLen = mm.base.Len()
	} else {
		mm.frames = append([][]byte(nil), m.Frames...)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.movies[m.Name]; ok {
		return fmt.Errorf("%w: %s", ErrExists, m.Name)
	}
	s.movies[m.Name] = mm
	return nil
}

func (s *MemStore) lookup(name string) (*memMovie, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	mm, ok := s.movies[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return mm, nil
}

// Get implements Store. The returned movie's Content follows the live
// tail; for eager movies Frames additionally exposes the materialized
// payloads as of the call (shared storage — do not mutate).
func (s *MemStore) Get(name string) (*Movie, error) {
	mm, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	mm.mu.Lock()
	defer mm.mu.Unlock()
	cp := &Movie{
		Name:      mm.name,
		Format:    mm.format,
		FrameRate: mm.frameRate,
		Attrs:     mm.attrs.Clone(),
		Content:   &memContent{mm: mm},
	}
	if mm.base == nil {
		cp.Frames = mm.frames[:len(mm.frames):len(mm.frames)]
	}
	return cp, nil
}

// Delete implements Store; a live movie refuses with ErrLive. Sources
// already open on the movie keep reading their snapshot — memory-backed
// frames outlive the catalogue entry.
func (s *MemStore) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	mm, ok := s.movies[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	mm.mu.Lock()
	live := mm.live != nil && mm.live.Live()
	mm.mu.Unlock()
	if live {
		return fmt.Errorf("%w: %s", ErrLive, name)
	}
	delete(s.movies, name)
	return nil
}

// List implements Store.
func (s *MemStore) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.movies))
	for name := range s.movies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SetAttrs implements Store.
func (s *MemStore) SetAttrs(name string, updates Attributes) error {
	mm, err := s.lookup(name)
	if err != nil {
		return err
	}
	mm.mu.Lock()
	defer mm.mu.Unlock()
	for k, v := range updates {
		if v == "" {
			delete(mm.attrs, k)
		} else {
			mm.attrs[k] = v
		}
	}
	return nil
}

// AppendFrames implements Store: a one-shot recording session.
func (s *MemStore) AppendFrames(name string, frames [][]byte) error {
	rec, err := s.Record(name)
	if err != nil {
		return err
	}
	_, err = rec.Append(frames)
	if cerr := rec.Close(); err == nil {
		err = cerr
	}
	return err
}

// Record implements Store.
func (s *MemStore) Record(name string) (Recorder, error) {
	mm, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if mm.live == nil || !mm.live.addSession() {
		mm.live = newLiveWindow(mm.total(), 0)
		mm.live.addSession()
	}
	return &memRecorder{mm: mm, win: mm.live}, nil
}

// memRecorder is one live append session on a MemStore movie.
type memRecorder struct {
	mm  *memMovie
	win *LiveWindow

	mu     sync.Mutex
	closed bool
}

func (r *memRecorder) Append(frames [][]byte) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, fmt.Errorf("moviedb: append on closed recorder (%s)", r.mm.name)
	}
	cps := make([][]byte, len(frames))
	for i, f := range frames {
		cp := make([]byte, len(f))
		copy(cp, f)
		cps[i] = cp
	}
	r.mm.mu.Lock()
	r.mm.frames = append(r.mm.frames, cps...)
	n := r.mm.total()
	// Published under mm.mu so ring indices equal storage indices even
	// with concurrent sessions, and a woken source always finds its frame.
	r.win.publish(cps)
	r.mm.mu.Unlock()
	return n, nil
}

func (r *memRecorder) Len() int64 {
	r.mm.mu.Lock()
	defer r.mm.mu.Unlock()
	return r.mm.total()
}

func (r *memRecorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.closed {
		r.closed = true
		r.win.endSession()
	}
	return nil
}

// memContent serves a MemStore movie: history from the base content and
// the appended frames, then the live tail.
type memContent struct {
	mm *memMovie
}

var _ Content = (*memContent)(nil)

func (c *memContent) Len() int64 {
	c.mm.mu.Lock()
	defer c.mm.mu.Unlock()
	return c.mm.total()
}

func (c *memContent) Open() FrameSource {
	c.mm.mu.Lock()
	base := c.mm.base
	baseLen := c.mm.baseLen
	c.mm.mu.Unlock()
	src := &memSource{mm: c.mm, baseLen: baseLen, tc: newTailCursor()}
	if base != nil {
		src.base = base.Open()
	}
	return src
}

// memSource reads a MemStore movie: positions below baseLen come from a
// cursor over the immutable base content, positions above from the
// appended frames, and at the live edge it waits on the movie's current
// window.
type memSource struct {
	mm      *memMovie
	base    FrameSource // nil when the movie has no lazy base
	baseLen int64
	pos     int64
	closed  bool
	tc      tailCursor
	batch   [][]byte // reused NextBatch result
}

func (s *memSource) Len() int64 {
	s.mm.mu.Lock()
	defer s.mm.mu.Unlock()
	return s.mm.total()
}

func (s *memSource) Pos() int64 { return s.pos }

func (s *memSource) Next() ([]byte, error) {
	if s.closed {
		return nil, fmt.Errorf("moviedb: source is closed")
	}
	for {
		if s.pos < s.baseLen {
			if s.base.Pos() != s.pos {
				if err := s.base.SeekTo(s.pos); err != nil {
					return nil, err
				}
			}
			f, err := s.base.Next()
			if err == nil {
				s.pos++
			}
			return f, err
		}
		s.mm.mu.Lock()
		if i := s.pos - s.baseLen; i < int64(len(s.mm.frames)) {
			f := s.mm.frames[i]
			s.mm.mu.Unlock()
			s.pos++
			return f, nil
		}
		win := s.mm.live
		s.mm.mu.Unlock()
		if win == nil || !s.tc.await(win, s.pos) {
			return nil, io.EOF
		}
	}
}

// NextBatch implements mtp.BatchSource: base-content frames forward to the
// base cursor's own batching; already-appended frames are immutable and
// resident, so they batch directly. Returns nothing at the live edge (Next
// handles waiting there).
func (s *memSource) NextBatch(max int) [][]byte {
	if s.closed || max <= 0 {
		return nil
	}
	if s.pos < s.baseLen {
		b, ok := s.base.(interface{ NextBatch(int) [][]byte })
		if !ok {
			return nil
		}
		if left := s.baseLen - s.pos; int64(max) > left {
			max = int(left)
		}
		if s.base.Pos() != s.pos {
			if err := s.base.SeekTo(s.pos); err != nil {
				return nil
			}
		}
		out := b.NextBatch(max)
		s.pos += int64(len(out))
		return out
	}
	s.mm.mu.Lock()
	i := s.pos - s.baseLen
	n := int64(len(s.mm.frames)) - i
	if n > int64(max) {
		n = int64(max)
	}
	if n <= 0 {
		s.mm.mu.Unlock()
		return nil
	}
	s.batch = append(s.batch[:0], s.mm.frames[i:i+n]...)
	s.mm.mu.Unlock()
	s.pos += n
	return s.batch
}

func (s *memSource) SeekTo(pos int64) error {
	if n := s.Len(); pos < 0 || pos > n {
		return fmt.Errorf("moviedb: seek to %d outside 0..%d", pos, n)
	}
	s.pos = pos
	return nil
}

func (s *memSource) Close() error {
	s.closed = true
	s.tc.CancelWait()
	if s.base != nil {
		return s.base.Close()
	}
	return nil
}

// CancelWait implements WaitCanceler: any Next parked at the live edge
// unblocks and returns io.EOF, as do all future edge waits.
func (s *memSource) CancelWait() { s.tc.CancelWait() }

// TakeWaited reports and resets the time Next has spent blocked at the
// live edge, for senders that pace against a wall clock.
func (s *memSource) TakeWaited() time.Duration { return s.tc.TakeWaited() }

// MaxResident forwards the base cursor's bound, if it reports one.
func (s *memSource) MaxResident() int {
	if rr, ok := s.base.(ResidentReporter); ok {
		return rr.MaxResident()
	}
	return 0
}

// Materialize drains lazy content into owned frame slices. The drain is
// bounded by the content's length at the moment of the call, so
// materializing a live movie yields a consistent prefix instead of chasing
// the appender.
func Materialize(c Content) ([][]byte, error) {
	src := c.Open()
	defer src.Close()
	n := c.Len()
	frames := make([][]byte, 0, n)
	for int64(len(frames)) < n {
		f, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		cp := make([]byte, len(f))
		copy(cp, f)
		frames = append(frames, cp)
	}
	return frames, nil
}
