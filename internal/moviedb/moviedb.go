// Package moviedb stores digital movies: frames plus descriptive attributes.
//
// It is the paper's "movie database" (Fig. 2) that MCAM server entities
// serve streams from, and the synthetic-movie generator substitutes for the
// production movie material the XMovie project used.
package moviedb

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Format identifies a movie's digital image format.
type Format int

// Formats from the XMovie environment.
const (
	FormatMJPEG Format = iota + 1
	FormatXMovieRaw
	FormatMPEG1
)

// String returns the format name.
func (f Format) String() string {
	switch f {
	case FormatMJPEG:
		return "M-JPEG"
	case FormatXMovieRaw:
		return "XMovie-Raw"
	case FormatMPEG1:
		return "MPEG-1"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// Attributes are the descriptive properties kept in the movie directory:
// free-form key/value pairs plus well-known keys.
type Attributes map[string]string

// Well-known attribute keys.
const (
	AttrTitle    = "title"
	AttrYear     = "year"
	AttrDirector = "director"
	AttrFormat   = "format"
	AttrLocation = "location"
)

// Clone returns a copy of the attribute set.
func (a Attributes) Clone() Attributes {
	out := make(Attributes, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Movie is one stored movie.
type Movie struct {
	Name      string
	Format    Format
	FrameRate int // frames per second
	Attrs     Attributes
	// Frames holds materialized frame payloads. For lazy movies (Content
	// non-nil) it stays nil; the data plane reads through Open either way.
	Frames [][]byte
	// Content, when non-nil, is the movie's lazy frame payload; it takes
	// precedence over Frames. Content values are immutable and shared
	// between the store and the copies Get hands out.
	Content Content
}

// FrameCount returns the number of stored frames, materialized or lazy.
func (m *Movie) FrameCount() int64 {
	if m.Content != nil {
		return m.Content.Len()
	}
	return int64(len(m.Frames))
}

// Open returns a fresh FrameSource over the movie's content, positioned at
// frame 0. Every open is independent, so many streams can play the same
// movie concurrently; lazy movies materialize at most one chunk window per
// source.
func (m *Movie) Open() FrameSource {
	if m.Content != nil {
		return m.Content.Open()
	}
	return SliceContent(m.Frames).Open()
}

// Duration returns the playing time in whole milliseconds.
func (m *Movie) DurationMillis() int64 {
	if m.FrameRate <= 0 {
		return 0
	}
	return m.FrameCount() * 1000 / int64(m.FrameRate)
}

// Errors returned by stores.
var (
	ErrNotFound = errors.New("moviedb: no such movie")
	ErrExists   = errors.New("moviedb: movie already exists")
	// ErrLazyContent reports an append to a movie whose backend cannot
	// extend its lazy content (it failed to materialize). Backends that
	// support append never return it: the disk store appends to its
	// segment natively, and MemStore materializes lazy movies on first
	// append. The MCAM layer maps it to StatusNotSupported.
	ErrLazyContent = errors.New("moviedb: cannot append frames to lazy content")
)

// Store is a movie repository.
type Store interface {
	// Create inserts a new movie; ErrExists if the name is taken.
	Create(m *Movie) error
	// Get returns the movie by name.
	Get(name string) (*Movie, error)
	// Delete removes the movie by name.
	Delete(name string) error
	// List returns all movie names, sorted.
	List() []string
	// SetAttrs merges attribute updates into the named movie (a value of
	// "" deletes the key).
	SetAttrs(name string, updates Attributes) error
	// AppendFrames adds recorded frames to the named movie.
	AppendFrames(name string, frames [][]byte) error
}

// MemStore is an in-memory Store, safe for concurrent use.
type MemStore struct {
	mu     sync.RWMutex
	movies map[string]*Movie
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{movies: make(map[string]*Movie)}
}

// Create implements Store.
func (s *MemStore) Create(m *Movie) error {
	if m.Name == "" {
		return fmt.Errorf("moviedb: empty movie name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.movies[m.Name]; ok {
		return fmt.Errorf("%w: %s", ErrExists, m.Name)
	}
	cp := *m
	cp.Attrs = m.Attrs.Clone()
	cp.Frames = append([][]byte(nil), m.Frames...)
	if cp.Attrs == nil {
		cp.Attrs = make(Attributes)
	}
	s.movies[m.Name] = &cp
	return nil
}

// Get implements Store. The returned movie shares frame storage with the
// store and must not be mutated; use SetAttrs/AppendFrames to modify.
func (s *MemStore) Get(name string) (*Movie, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.movies[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	cp := *m
	cp.Attrs = m.Attrs.Clone()
	return &cp, nil
}

// Delete implements Store.
func (s *MemStore) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.movies[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(s.movies, name)
	return nil
}

// List implements Store.
func (s *MemStore) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.movies))
	for name := range s.movies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SetAttrs implements Store.
func (s *MemStore) SetAttrs(name string, updates Attributes) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.movies[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	for k, v := range updates {
		if v == "" {
			delete(m.Attrs, k)
		} else {
			m.Attrs[k] = v
		}
	}
	return nil
}

// AppendFrames implements Store. A lazy movie is materialized on first
// append (recording onto a synthesized catalogue entry turns it eager);
// the drain is bounded by the movie's length, which an in-memory store
// must be able to hold anyway.
func (s *MemStore) AppendFrames(name string, frames [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.movies[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if m.Content != nil {
		materialized, err := Materialize(m.Content)
		if err != nil {
			return fmt.Errorf("%w: %s: %v", ErrLazyContent, name, err)
		}
		m.Frames = materialized
		m.Content = nil
	}
	for _, f := range frames {
		cp := make([]byte, len(f))
		copy(cp, f)
		m.Frames = append(m.Frames, cp)
	}
	return nil
}

// Materialize drains lazy content into owned frame slices.
func Materialize(c Content) ([][]byte, error) {
	src := c.Open()
	defer src.Close()
	frames := make([][]byte, 0, c.Len())
	for {
		f, err := src.Next()
		if err == io.EOF {
			return frames, nil
		}
		if err != nil {
			return nil, err
		}
		cp := make([]byte, len(f))
		copy(cp, f)
		frames = append(frames, cp)
	}
}
