package moviedb

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMemStoreCRUD(t *testing.T) {
	s := NewMemStore()
	m := Synthesize(SynthConfig{Name: "casablanca", Format: FormatMJPEG, Frames: 10})
	if err := s.Create(m); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(m); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create = %v", err)
	}
	got, err := s.Get("casablanca")
	if err != nil {
		t.Fatal(err)
	}
	if got.Format != FormatMJPEG || len(got.Frames) != 10 {
		t.Errorf("got %v with %d frames", got.Format, len(got.Frames))
	}
	if got.Attrs[AttrTitle] != "casablanca" {
		t.Errorf("title attr = %q", got.Attrs[AttrTitle])
	}
	if err := s.Delete("casablanca"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("casablanca"); !errors.Is(err, ErrNotFound) {
		t.Errorf("get after delete = %v", err)
	}
	if err := s.Delete("casablanca"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete = %v", err)
	}
}

func TestCreateRejectsEmptyName(t *testing.T) {
	s := NewMemStore()
	if err := s.Create(&Movie{}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestListSorted(t *testing.T) {
	s := NewMemStore()
	MustSeed(s, "movie", 5, 2)
	got := s.List()
	want := []string{"movie-0", "movie-1", "movie-2", "movie-3", "movie-4"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("List = %v", got)
	}
}

func TestSetAttrs(t *testing.T) {
	s := NewMemStore()
	MustSeed(s, "m", 1, 1)
	if err := s.SetAttrs("m-0", Attributes{AttrDirector: "Curtiz", AttrYear: ""}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("m-0")
	if err != nil {
		t.Fatal(err)
	}
	if got.Attrs[AttrDirector] != "Curtiz" {
		t.Errorf("director = %q", got.Attrs[AttrDirector])
	}
	if _, ok := got.Attrs[AttrYear]; ok {
		t.Error("year not deleted")
	}
	if err := s.SetAttrs("none", Attributes{"a": "b"}); !errors.Is(err, ErrNotFound) {
		t.Errorf("SetAttrs on missing = %v", err)
	}
}

func TestGetReturnsAttrCopy(t *testing.T) {
	s := NewMemStore()
	MustSeed(s, "m", 1, 1)
	a, _ := s.Get("m-0")
	a.Attrs["mutation"] = "x"
	b, _ := s.Get("m-0")
	if _, ok := b.Attrs["mutation"]; ok {
		t.Error("Get leaked internal attribute map")
	}
}

func TestAppendFramesCopies(t *testing.T) {
	s := NewMemStore()
	if err := s.Create(&Movie{Name: "rec", FrameRate: 25, Attrs: Attributes{}}); err != nil {
		t.Fatal(err)
	}
	f := []byte{1, 2, 3}
	if err := s.AppendFrames("rec", [][]byte{f}); err != nil {
		t.Fatal(err)
	}
	f[0] = 99
	got, _ := s.Get("rec")
	if got.Frames[0][0] != 1 {
		t.Error("AppendFrames did not copy the frame")
	}
	if err := s.AppendFrames("none", [][]byte{f}); !errors.Is(err, ErrNotFound) {
		t.Errorf("AppendFrames on missing = %v", err)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(SynthConfig{Name: "x", Format: FormatMPEG1, Frames: 5})
	b := Synthesize(SynthConfig{Name: "x", Format: FormatMPEG1, Frames: 5})
	for i := range a.Frames {
		if !bytes.Equal(a.Frames[i], b.Frames[i]) {
			t.Fatalf("frame %d differs between identical configs", i)
		}
	}
	c := Synthesize(SynthConfig{Name: "y", Format: FormatMPEG1, Frames: 5})
	if bytes.Equal(a.Frames[0], c.Frames[0]) {
		t.Error("different names produced identical frames")
	}
}

func TestSynthesizeSizes(t *testing.T) {
	tests := []struct {
		format Format
		want   int
	}{
		{FormatMJPEG, 8 * 1024},
		{FormatXMovieRaw, 320 * 240 / 4},
		{FormatMPEG1, 4 * 1024},
	}
	for _, tt := range tests {
		m := Synthesize(SynthConfig{Name: "t", Format: tt.format, Frames: 1})
		if len(m.Frames[0]) != tt.want {
			t.Errorf("%v frame size = %d, want %d", tt.format, len(m.Frames[0]), tt.want)
		}
	}
}

func TestDurationMillis(t *testing.T) {
	m := Synthesize(SynthConfig{Name: "d", Frames: 50, FrameRate: 25})
	if got := m.DurationMillis(); got != 2000 {
		t.Errorf("duration = %dms, want 2000", got)
	}
	empty := &Movie{}
	if empty.DurationMillis() != 0 {
		t.Error("zero-rate movie has nonzero duration")
	}
}

func TestStorePropertyQuick(t *testing.T) {
	// Creating then getting any set of uniquely named movies preserves
	// frame contents.
	f := func(names []string) bool {
		s := NewMemStore()
		seen := map[string]bool{}
		for _, n := range names {
			if n == "" || seen[n] {
				continue
			}
			seen[n] = true
			m := Synthesize(SynthConfig{Name: n, Frames: 2, FrameSize: 16})
			if err := s.Create(m); err != nil {
				return false
			}
			got, err := s.Get(n)
			if err != nil || len(got.Frames) != 2 {
				return false
			}
			if !bytes.Equal(got.Frames[0], m.Frames[0]) {
				return false
			}
		}
		return len(s.List()) == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
