// Package stripe holds the shared string-hash behind the striped-lock
// containers (the sharded movie store and the striped directory DSA), so
// the stripe selectors cannot drift apart.
package stripe

// FNV32a is the allocation-free 32-bit FNV-1a hash of s. Callers mask the
// result with a power-of-two stripe count.
func FNV32a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}
