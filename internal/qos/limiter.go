package qos

import (
	"sync"
	"time"
)

// defaultBurstFloor keeps tiny caps workable: a bucket must hold at least
// one frame-sized burst or every send waits.
const defaultBurstFloor = 4 << 10

// Limiter is a token-bucket bandwidth regulator shared by every stream of
// one tenant. It implements the reservation form of throttling the MTP
// sender needs (mtp.Throttle): Reserve books n bytes unconditionally and
// returns how long the caller must wait before sending them, letting the
// bucket go negative instead of refusing — continuous-media senders never
// drop at the throttle, they shift their pacing schedule (the cap delay is
// credited like a pause, so capped frames are not misread as late).
type Limiter struct {
	mu     sync.Mutex
	rate   float64 // tokens (bytes) per second
	burst  float64
	tokens float64
	last   time.Time

	bytes   int64
	waits   int64
	waitDur time.Duration
}

// ThrottleStats is a Limiter's accounting snapshot.
type ThrottleStats struct {
	// Bytes counts bytes granted through the cap.
	Bytes int64
	// Waits counts reservations that had to wait; Wait is their cumulative
	// imposed delay.
	Waits int64
	Wait  time.Duration
}

// NewLimiter builds a limiter granting bytesPerSec with bucket depth burst
// (0 = bytesPerSec/8, at least 4 KiB). A bytesPerSec <= 0 means no cap:
// nil is returned, and a nil Limiter grants everything instantly.
func NewLimiter(bytesPerSec, burst int64) *Limiter {
	if bytesPerSec <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = bytesPerSec / 8
		if burst < defaultBurstFloor {
			burst = defaultBurstFloor
		}
	}
	return &Limiter{
		rate:   float64(bytesPerSec),
		burst:  float64(burst),
		tokens: float64(burst),
		last:   time.Now(),
	}
}

// Reserve books n bytes against the budget and returns how long the caller
// must wait before sending them (0 = send now). Safe for concurrent use;
// concurrent reservations serialize, so the tenant's streams share the cap
// rather than each getting it.
func (l *Limiter) Reserve(n int) time.Duration {
	if l == nil || n <= 0 {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.last = now
	l.tokens -= float64(n)
	l.bytes += int64(n)
	if l.tokens >= 0 {
		return 0
	}
	wait := time.Duration(-l.tokens / l.rate * float64(time.Second))
	l.waits++
	l.waitDur += wait
	return wait
}

// Rate returns the configured bytes/second (0 for a nil limiter).
func (l *Limiter) Rate() int64 {
	if l == nil {
		return 0
	}
	return int64(l.rate)
}

// Stats snapshots the accounting counters (zero for a nil limiter).
func (l *Limiter) Stats() ThrottleStats {
	if l == nil {
		return ThrottleStats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return ThrottleStats{Bytes: l.bytes, Waits: l.waits, Wait: l.waitDur}
}
