package qos

import (
	"testing"
	"time"
)

func TestAcquireQuotaAndRelease(t *testing.T) {
	var events []Event
	c := NewController(Policy{
		Tenants: map[string]Class{"free": {Priority: 0, MaxSessions: 2}},
	}, func(ev Event) { events = append(events, ev) })

	g1, ok := c.Acquire("free")
	if !ok {
		t.Fatal("first acquire refused")
	}
	g1.Confirm(1)
	g2, ok := c.Acquire("free")
	if !ok {
		t.Fatal("second acquire refused")
	}
	g2.Confirm(2)
	if _, ok := c.Acquire("free"); ok {
		t.Fatal("third acquire exceeded MaxSessions=2")
	}
	g1.Release()
	g3, ok := c.Acquire("free")
	if !ok {
		t.Fatal("acquire after release refused")
	}
	g3.Confirm(3)

	st := c.Snapshot()["free"]
	if st.Active != 2 || st.Peak != 2 || st.Admitted != 3 || st.RejectedQuota != 1 {
		t.Fatalf("stats = %+v, want active 2 peak 2 admitted 3 rejectedQuota 1", st)
	}
	var kinds []EventKind
	for _, ev := range events {
		kinds = append(kinds, ev.Kind)
	}
	want := []EventKind{EventAdmit, EventAdmit, EventRejectQuota, EventAdmit}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events = %v, want %v", kinds, want)
		}
	}
}

func TestUnlimitedDefaultAndPreemptCounters(t *testing.T) {
	c := NewController(Policy{
		Default: Class{Priority: 0},
		Tenants: map[string]Class{"gold": {Priority: 10}},
	}, nil)
	victim, ok := c.Acquire("")
	if !ok {
		t.Fatal("anonymous acquire refused")
	}
	victim.Confirm(1)
	winner, ok := c.Acquire("gold")
	if !ok {
		t.Fatal("gold acquire refused")
	}
	c.Preempt(winner, victim, 1)
	winner.Confirm(2)
	victim.Release()

	snap := c.Snapshot()
	if got := snap["gold"].Preemptions; got != 1 {
		t.Fatalf("gold preemptions = %d, want 1", got)
	}
	if got := snap[""].Preempted; got != 1 {
		t.Fatalf("anonymous preempted = %d, want 1", got)
	}
	if snap["gold"].Class.Priority != 10 || snap[""].Class.Priority != 0 {
		t.Fatalf("class resolution wrong: %+v", snap)
	}
}

func TestCancelFull(t *testing.T) {
	c := NewController(Policy{}, nil)
	g, ok := c.Acquire("t")
	if !ok {
		t.Fatal("acquire refused")
	}
	g.CancelFull()
	st := c.Snapshot()["t"]
	if st.Active != 0 || st.RejectedFull != 1 || st.Admitted != 0 {
		t.Fatalf("stats = %+v, want active 0 rejectedFull 1 admitted 0", st)
	}
}

func TestLimiterRate(t *testing.T) {
	// 1 MiB/s with an 8 KiB bucket: after the initial burst, each 64 KiB
	// reservation owes ~62.5ms of wait. Reserve never refuses — it returns
	// the delay the sender must absorb.
	l := NewLimiter(1<<20, 8<<10)
	if d := l.Reserve(4 << 10); d != 0 {
		t.Fatalf("burst reservation waited %v", d)
	}
	var last time.Duration
	for i := 0; i < 4; i++ {
		last = l.Reserve(64 << 10)
	}
	// Without sleeping between reservations the debt accumulates:
	// 4*64KiB + 4KiB - 8KiB burst ≈ 252KiB at 1MiB/s ≈ 246ms owed by the
	// last reservation.
	if last < 200*time.Millisecond || last > 300*time.Millisecond {
		t.Fatalf("final wait %v, want ~246ms", last)
	}
	st := l.Stats()
	if st.Bytes != 4<<10+4*(64<<10) || st.Waits == 0 || st.Wait == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNilLimiter(t *testing.T) {
	var l *Limiter
	if d := l.Reserve(1 << 30); d != 0 {
		t.Fatalf("nil limiter imposed wait %v", d)
	}
	if st := l.Stats(); st != (ThrottleStats{}) {
		t.Fatalf("nil limiter stats = %+v", st)
	}
	if NewLimiter(0, 0) != nil {
		t.Fatal("NewLimiter(0) should mean no cap (nil)")
	}
}
