// Package qos is the server's multi-tenant quality-of-service policy and
// its runtime accounting. The paper's premise — continuous-media delivery
// must be protected under contention ("late video is worse than lost
// video") — becomes, at production scale, noisy-neighbor isolation between
// classes of users: per-tenant session quotas, per-tenant aggregate
// stream-bandwidth caps (a shared token bucket throttling every stream the
// tenant plays), and admission priorities under which a higher-priority
// connection may preempt a lower-priority session when the server-wide
// MaxSessions bound is hit.
//
// A Policy is pure configuration (ServerConfig.Limits.QoS). The Controller
// is its runtime: the connection manager acquires a Grant per admitted
// session, the Grant hands the MCAM handler the tenant's shared Limiter and
// stream counters, and every admission, rejection and preemption decision
// is counted per tenant and emitted as a structured Event for the server's
// decision log. Snapshot exposes the per-tenant counters to Observe and the
// /metrics endpoint.
package qos

import (
	"sort"
	"sync"

	"xmovie/internal/spa"
)

// Class is the QoS contract of one tenant (or the default for tenants the
// policy does not name).
type Class struct {
	// Name labels the class in events and metrics ("" = the tenant's own
	// name, or "default").
	Name string
	// Priority orders admission under contention: when MaxSessions is
	// reached, a connection may preempt an active session of strictly lower
	// priority (paying viewers displace anonymous ones). Equal priorities
	// never preempt each other.
	Priority int
	// MaxSessions bounds the tenant's concurrently admitted sessions
	// (0 = no per-tenant quota; the server-wide bound still applies).
	MaxSessions int
	// StreamBandwidth caps the tenant's aggregate outbound stream
	// bandwidth in bytes/second, enforced by a token bucket shared by every
	// stream the tenant's sessions play (0 = uncapped).
	StreamBandwidth int64
	// Burst is the token bucket depth in bytes (0 = StreamBandwidth/8,
	// at least one 4 KiB chunk). Smaller bursts hold short-term throughput
	// closer to the cap; larger ones absorb scheduling jitter.
	Burst int64
}

// Policy maps tenants to classes. The zero Policy admits everything
// uniformly: no quotas, no caps, priority 0 for all.
type Policy struct {
	// Default applies to tenants not listed in Tenants (including the
	// anonymous tenant "").
	Default Class
	// Tenants overrides the default per tenant name.
	Tenants map[string]Class
}

// ClassOf resolves the class serving tenant.
func (p Policy) ClassOf(tenant string) Class {
	if c, ok := p.Tenants[tenant]; ok {
		return c
	}
	return p.Default
}

// EventKind classifies QoS decisions.
type EventKind string

// QoS decision kinds, in the order a connection can meet them.
const (
	// EventAdmit records a session admitted (possibly after preempting).
	EventAdmit EventKind = "admit"
	// EventRejectQuota records a connection refused at the tenant's own
	// session quota.
	EventRejectQuota EventKind = "reject-quota"
	// EventRejectFull records a connection refused at the server-wide
	// MaxSessions bound with no lower-priority session to preempt.
	EventRejectFull EventKind = "reject-full"
	// EventPreempt records an active session evicted to admit a
	// higher-priority connection. Tenant is the evicted session's tenant;
	// By is the winner's.
	EventPreempt EventKind = "preempt"
)

// Event is one structured QoS decision, emitted synchronously from the
// admission path. Handlers must be fast and must not call back into the
// Controller or the connection manager.
type Event struct {
	Kind     EventKind `json:"kind"`
	Tenant   string    `json:"tenant"`
	Priority int       `json:"priority"`
	// SessionID is the connection-manager session id the decision is about
	// (0 when the connection was never admitted).
	SessionID int64 `json:"session_id,omitempty"`
	// By names the preempting tenant on EventPreempt.
	By string `json:"by,omitempty"`
	// Active is the tenant's admitted-session count after the decision.
	Active int `json:"active"`
}

// TenantStats is one tenant's accounting snapshot (Controller.Snapshot,
// surfaced through core's Observe and the /metrics endpoint).
type TenantStats struct {
	Tenant string
	Class  Class
	// Active / Peak track the tenant's admitted sessions.
	Active int64
	Peak   int64
	// Admitted counts sessions admitted; Preemptions counts how many of
	// those displaced a lower-priority session to get in.
	Admitted    int64
	Preemptions int64
	// RejectedQuota / RejectedFull count refused connections (tenant quota
	// vs. server full with nothing to preempt).
	RejectedQuota int64
	RejectedFull  int64
	// Preempted counts this tenant's sessions evicted by higher-priority
	// admissions.
	Preempted int64
	// Streams aggregates the data-plane outcomes of the tenant's finished
	// streams.
	Streams spa.Totals
	// Throttle is the tenant's bandwidth-cap accounting (zero when the
	// class has no cap).
	Throttle ThrottleStats
}

// tenantState is the controller's per-tenant runtime record. Session
// counters are guarded by the controller mutex; Streams and the limiter
// keep their own synchronization (they are touched from stream goroutines).
type tenantState struct {
	name    string
	class   Class
	limiter *Limiter
	streams spa.Totals

	active        int
	peak          int64
	admitted      int64
	preemptions   int64
	rejectedQuota int64
	rejectedFull  int64
	preempted     int64
}

// Controller enforces a Policy at runtime. All methods are safe for
// concurrent use; the connection manager calls the admission methods under
// its own session lock, which is fine as long as the event callback does
// not call back in.
type Controller struct {
	policy Policy
	emit   func(Event)

	mu      sync.Mutex
	tenants map[string]*tenantState
}

// NewController builds a controller for policy. emit, when non-nil,
// receives every QoS decision (the structured event log).
func NewController(policy Policy, emit func(Event)) *Controller {
	c := &Controller{policy: policy, emit: emit, tenants: make(map[string]*tenantState)}
	// Pre-create the configured tenants so Snapshot (and /metrics) exposes
	// them from the start, before their first connection.
	for name := range policy.Tenants {
		c.tenants[name] = c.newTenant(name)
	}
	return c
}

// Policy returns the configuration the controller enforces.
func (c *Controller) Policy() Policy { return c.policy }

func (c *Controller) newTenant(name string) *tenantState {
	cls := c.policy.ClassOf(name)
	if cls.Name == "" {
		cls.Name = name
		if cls.Name == "" {
			cls.Name = "default"
		}
	}
	return &tenantState{
		name:    name,
		class:   cls,
		limiter: NewLimiter(cls.StreamBandwidth, cls.Burst),
	}
}

// tenant returns (creating on first use) the state for name. Callers hold
// c.mu.
func (c *Controller) tenant(name string) *tenantState {
	t, ok := c.tenants[name]
	if !ok {
		t = c.newTenant(name)
		c.tenants[name] = t
	}
	return t
}

// Grant is one session's hold on its tenant's QoS budget, acquired at
// admission and released exactly once when the session finishes (or
// cancelled if the server could not admit it after all).
type Grant struct {
	c *Controller
	t *tenantState
	// Tenant and Priority are fixed at acquisition for the connection
	// manager's preemption decisions.
	Tenant   string
	Priority int
}

// Acquire checks tenant's session quota and, when within it, takes one
// session slot. It reports false — counting and emitting a reject-quota
// event — when the tenant is at its quota. The caller must end a returned
// Grant with exactly one of Confirm+Release or CancelFull.
func (c *Controller) Acquire(tenant string) (*Grant, bool) {
	c.mu.Lock()
	t := c.tenant(tenant)
	if t.class.MaxSessions > 0 && t.active >= t.class.MaxSessions {
		t.rejectedQuota++
		ev := Event{Kind: EventRejectQuota, Tenant: tenant, Priority: t.class.Priority, Active: t.active}
		c.mu.Unlock()
		c.send(ev)
		return nil, false
	}
	t.active++
	if n := int64(t.active); n > t.peak {
		t.peak = n
	}
	c.mu.Unlock()
	return &Grant{c: c, t: t, Tenant: tenant, Priority: t.class.Priority}, true
}

// Confirm books the grant's session as admitted under id.
func (g *Grant) Confirm(id int64) {
	g.c.mu.Lock()
	g.t.admitted++
	ev := Event{Kind: EventAdmit, Tenant: g.Tenant, Priority: g.Priority, SessionID: id, Active: g.t.active}
	g.c.mu.Unlock()
	g.c.send(ev)
}

// CancelFull returns the slot of a grant whose connection the server
// refused at the global bound (nothing preemptable), counting the
// rejection.
func (g *Grant) CancelFull() {
	g.c.mu.Lock()
	g.t.active--
	g.t.rejectedFull++
	ev := Event{Kind: EventRejectFull, Tenant: g.Tenant, Priority: g.Priority, Active: g.t.active}
	g.c.mu.Unlock()
	g.c.send(ev)
}

// Release returns the slot of a finished session.
func (g *Grant) Release() {
	g.c.mu.Lock()
	g.t.active--
	g.c.mu.Unlock()
}

// Preempt books victim's session (admitted under victimID) as evicted in
// favor of the winner's connection.
func (c *Controller) Preempt(winner, victim *Grant, victimID int64) {
	c.mu.Lock()
	winner.t.preemptions++
	victim.t.preempted++
	ev := Event{Kind: EventPreempt, Tenant: victim.Tenant, Priority: victim.Priority,
		SessionID: victimID, By: winner.Tenant, Active: victim.t.active}
	c.mu.Unlock()
	c.send(ev)
}

// Limiter returns the tenant's shared bandwidth throttle (nil when the
// class has no cap). It satisfies mtp.Throttle.
func (g *Grant) Limiter() *Limiter { return g.t.limiter }

// StreamTotals returns the tenant's stream-outcome accumulator, shared by
// every session of the tenant.
func (g *Grant) StreamTotals() *spa.Totals { return &g.t.streams }

func (c *Controller) send(ev Event) {
	if c.emit != nil {
		c.emit(ev)
	}
}

// Snapshot returns the per-tenant counters for every tenant seen so far
// (configured tenants appear even before their first connection), keyed by
// tenant name.
func (c *Controller) Snapshot() map[string]TenantStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]TenantStats, len(c.tenants))
	for name, t := range c.tenants {
		st := TenantStats{
			Tenant:        name,
			Class:         t.class,
			Active:        int64(t.active),
			Peak:          t.peak,
			Admitted:      t.admitted,
			Preemptions:   t.preemptions,
			RejectedQuota: t.rejectedQuota,
			RejectedFull:  t.rejectedFull,
			Preempted:     t.preempted,
			Streams:       t.streams.Snapshot(),
		}
		if t.limiter != nil {
			st.Throttle = t.limiter.Stats()
		}
		out[name] = st
	}
	return out
}

// Tenants returns the known tenant names in sorted order — the stable
// iteration order metrics emission needs.
func Tenants(snap map[string]TenantStats) []string {
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
