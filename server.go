package xmovie

import (
	"io"
	"time"

	"xmovie/internal/core"
	"xmovie/internal/qos"
	"xmovie/internal/spa"
	"xmovie/internal/transport"
)

// Limits groups the server's admission and pacing bounds: the global
// session ceiling, the busy retry-after hint, the per-read storage
// timeout, and the per-tenant QoS policy.
type Limits = core.Limits

// QoSPolicy maps tenants to service classes: per-tenant session quotas,
// stream-bandwidth caps and admission priorities. The zero value admits
// everyone into an unlimited default class.
type QoSPolicy = qos.Policy

// QoSClass is one service class in a QoSPolicy (priority, session quota,
// aggregate stream-bandwidth cap).
type QoSClass = qos.Class

// TenantStats is one tenant's QoS accounting in an Observation.
type TenantStats = qos.TenantStats

// Observation is the server's unified observability snapshot: session
// admission counters, aggregate stream outcomes, chunk-cache hit rates and
// per-tenant QoS accounting in one coherent read.
type Observation = core.Observation

// ServerConfig configures ListenAndServe.
type ServerConfig struct {
	// Addr is the control-plane listen address (TPKT over TCP), e.g.
	// "127.0.0.1:0". Empty means no listener: an in-memory server fed
	// through Server.ServeConn (tests, embedded deployments, the load
	// harness).
	Addr string
	// MetricsAddr, when non-empty, serves the Observation as Prometheus
	// text on http://<MetricsAddr>/metrics.
	MetricsAddr string
	// Stack selects the control stack (default StackGenerated).
	Stack StackKind
	// Env provides the movie store, stream dialer, directory and
	// equipment. When Env.Store is nil the server builds one from
	// Backend/DataDir, owns it (closed on shutdown) and publishes it back
	// into Env.Store so the caller can seed the catalogue. A nil Env is
	// equivalent to a zero one.
	Env *ServerEnv
	// Backend selects the store built for a nil Env.Store: BackendMemory
	// (default, sharded in-RAM) or BackendDisk (durable segment files).
	Backend Backend
	// DataDir roots the disk backend's movie directories (required for
	// BackendDisk).
	DataDir string
	// Processors limits the generated stack to P virtual processors
	// (0 = unlimited), modelling the paper's multiprocessor sizing.
	Processors int
	// Limits bounds admission and pacing: session ceiling, busy
	// retry-after hint, storage read timeout, per-tenant QoS policy.
	Limits Limits
	// TenantOf classifies an accepted listener connection into a tenant
	// name for Limits.QoS (nil = every connection is the default tenant).
	// Sessions fed through ServeConn use ServeConnFor instead.
	TenantOf func(Conn) string
	// QoSLog, when non-nil, receives one JSON line per QoS admission
	// decision (admit, reject, preempt). Writes are synchronous; wrap slow
	// sinks in a buffered writer.
	QoSLog io.Writer
}

// SessionStats counts connection-manager activity (admissions, rejections,
// active/peak sessions).
type SessionStats = core.SessionStats

// StreamTotals aggregates the server's data-plane outcomes across every
// session's Stream Provider Agent: frames sent, frames dropped by adaptive
// delivery, late sends, bytes, and receiver feedback reports.
type StreamTotals = spa.Totals

// Server is a running MCAM server entity. One server admits any number of
// control connections up to its session bound, creating the per-connection
// Estelle modules (or hand-coded handlers) dynamically, exactly as the
// paper's server machine does — and reclaiming them when sessions end.
type Server struct {
	inner *core.Server
}

// ListenAndServe starts an MCAM server.
func ListenAndServe(cfg ServerConfig) (*Server, error) {
	var tenantOf func(transport.Conn) string
	if cfg.TenantOf != nil {
		tenantOf = cfg.TenantOf
	}
	inner, err := core.NewServer(core.ServerConfig{
		Addr:        cfg.Addr,
		MetricsAddr: cfg.MetricsAddr,
		Stack:       cfg.Stack,
		Env:         cfg.Env,
		Backend:     cfg.Backend,
		DataDir:     cfg.DataDir,
		Processors:  cfg.Processors,
		Limits:      cfg.Limits,
		TenantOf:    tenantOf,
		QoSLog:      cfg.QoSLog,
	})
	if err != nil {
		return nil, err
	}
	return &Server{inner: inner}, nil
}

// Addr returns the bound control-plane address ("" when the server has no
// listener).
func (s *Server) Addr() string { return s.inner.Addr() }

// MetricsAddr returns the bound /metrics listen address ("" when
// ServerConfig.MetricsAddr was empty).
func (s *Server) MetricsAddr() string { return s.inner.MetricsAddr() }

// Env returns the server's environment — the one passed in
// ServerConfig.Env, or the server-built one for a nil config Env.
func (s *Server) Env() *ServerEnv { return s.inner.Env() }

// ServeConn admits an in-memory transport connection (e.g. one end of a
// Pipe) as a control session under the default tenant (or the
// ServerConfig.TenantOf classification when set).
func (s *Server) ServeConn(conn Conn) error { return s.inner.ServeConn(conn) }

// ServeConnFor admits an in-memory transport connection as a control
// session belonging to tenant ("" = default class).
func (s *Server) ServeConnFor(conn Conn, tenant string) error {
	return s.inner.ServeConnFor(conn, tenant)
}

// Observe snapshots every observability counter the server keeps — the
// same data /metrics serves — in one coherent read. (The deprecated
// Stats/StreamStats wrappers were removed after their one-release grace
// period; read Observe().Sessions and Observe().Streams.)
func (s *Server) Observe() Observation { return s.inner.Observe() }

// Drain stops admitting new sessions, waits up to timeout for active ones
// to complete, then force-closes the remainder and shuts down.
func (s *Server) Drain(timeout time.Duration) error { return s.inner.Drain(timeout) }

// Close stops the server immediately, force-closing active sessions.
func (s *Server) Close() error { return s.inner.Close() }
