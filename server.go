package xmovie

import (
	"time"

	"xmovie/internal/core"
	"xmovie/internal/spa"
)

// ServerConfig configures ListenAndServe.
type ServerConfig struct {
	// Addr is the control-plane listen address (TPKT over TCP), e.g.
	// "127.0.0.1:0". Empty means no listener: an in-memory server fed
	// through Server.ServeConn (tests, embedded deployments, the load
	// harness).
	Addr string
	// Stack selects the control stack (default StackGenerated).
	Stack StackKind
	// Env provides the movie store, stream dialer, directory and
	// equipment. When Env.Store is nil the server builds one from
	// Backend/DataDir, owns it (closed on shutdown) and publishes it back
	// into Env.Store so the caller can seed the catalogue.
	Env *ServerEnv
	// Backend selects the store built for a nil Env.Store: BackendMemory
	// (default, sharded in-RAM) or BackendDisk (durable segment files).
	Backend Backend
	// DataDir roots the disk backend's movie directories (required for
	// BackendDisk).
	DataDir string
	// Processors limits the generated stack to P virtual processors
	// (0 = unlimited), modelling the paper's multiprocessor sizing.
	Processors int
	// MaxSessions bounds concurrently admitted control sessions
	// (0 = core.DefaultMaxSessions). Connections beyond the bound are
	// answered with StatusBusy plus a retry-after hint, then closed.
	MaxSessions int
	// BusyRetryAfter is the retry-after hint carried by over-limit
	// StatusBusy responses (0 = 1s).
	BusyRetryAfter time.Duration
	// StreamReadTimeout bounds how long a stream may wait on one storage
	// read before the frame is skipped (FlagSkip) instead of wedging the
	// sender (0 = no bound). Live-edge waits are not reads and stay
	// unbounded.
	StreamReadTimeout time.Duration
}

// SessionStats counts connection-manager activity (admissions, rejections,
// active/peak sessions).
type SessionStats = core.SessionStats

// StreamTotals aggregates the server's data-plane outcomes across every
// session's Stream Provider Agent: frames sent, frames dropped by adaptive
// delivery, late sends, bytes, and receiver feedback reports.
type StreamTotals = spa.Totals

// Server is a running MCAM server entity. One server admits any number of
// control connections up to its session bound, creating the per-connection
// Estelle modules (or hand-coded handlers) dynamically, exactly as the
// paper's server machine does — and reclaiming them when sessions end.
type Server struct {
	inner *core.Server
}

// ListenAndServe starts an MCAM server.
func ListenAndServe(cfg ServerConfig) (*Server, error) {
	if cfg.StreamReadTimeout > 0 && cfg.Env != nil {
		cfg.Env.StreamReadTimeout = cfg.StreamReadTimeout
	}
	inner, err := core.NewServer(core.ServerConfig{
		Addr:           cfg.Addr,
		Stack:          cfg.Stack,
		Env:            cfg.Env,
		Backend:        cfg.Backend,
		DataDir:        cfg.DataDir,
		Processors:     cfg.Processors,
		MaxSessions:    cfg.MaxSessions,
		BusyRetryAfter: cfg.BusyRetryAfter,
	})
	if err != nil {
		return nil, err
	}
	return &Server{inner: inner}, nil
}

// Addr returns the bound control-plane address ("" when the server has no
// listener).
func (s *Server) Addr() string { return s.inner.Addr() }

// ServeConn admits an in-memory transport connection (e.g. one end of a
// Pipe) as a control session.
func (s *Server) ServeConn(conn Conn) error { return s.inner.ServeConn(conn) }

// Stats snapshots the connection-manager counters.
func (s *Server) Stats() SessionStats { return s.inner.Stats() }

// StreamStats snapshots the server-wide data-plane counters.
func (s *Server) StreamStats() StreamTotals { return s.inner.StreamStats() }

// Drain stops admitting new sessions, waits up to timeout for active ones
// to complete, then force-closes the remainder and shuts down.
func (s *Server) Drain(timeout time.Duration) error { return s.inner.Drain(timeout) }

// Close stops the server immediately, force-closing active sessions.
func (s *Server) Close() error { return s.inner.Close() }
