package xmovie

import (
	"xmovie/internal/core"
)

// ServerConfig configures ListenAndServe.
type ServerConfig struct {
	// Addr is the control-plane listen address (TPKT over TCP), e.g.
	// "127.0.0.1:0".
	Addr string
	// Stack selects the control stack (default StackGenerated).
	Stack StackKind
	// Env provides the movie store, stream dialer, directory and
	// equipment. Env.Store is required.
	Env *ServerEnv
	// Processors limits the generated stack to P virtual processors
	// (0 = unlimited), modelling the paper's multiprocessor sizing.
	Processors int
}

// Server is a running MCAM server entity. One server accepts any number of
// control connections, creating the per-connection Estelle modules (or
// hand-coded handlers) dynamically, exactly as the paper's server machine
// does.
type Server struct {
	inner *core.Server
}

// ListenAndServe starts an MCAM server.
func ListenAndServe(cfg ServerConfig) (*Server, error) {
	inner, err := core.NewServer(core.ServerConfig{
		Addr:       cfg.Addr,
		Stack:      cfg.Stack,
		Env:        cfg.Env,
		Processors: cfg.Processors,
	})
	if err != nil {
		return nil, err
	}
	return &Server{inner: inner}, nil
}

// Addr returns the bound control-plane address.
func (s *Server) Addr() string { return s.inner.Addr() }

// Close stops the server.
func (s *Server) Close() error { return s.inner.Close() }
