# Build/test entry points for the xmovie repository. `make verify` is the
# tier-1 gate (ROADMAP.md); CI runs the same targets plus race/bench jobs.

GO ?= go

.PHONY: build test test-short verify fmt-check vet lint generate generate-check \
	metrics-guard bench-smoke bench-guard bench-trajectory load-smoke \
	load-stream load-disk load-broadcast load-chaos load-qos load-scale ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short mode skips the timing experiments (internal/experiments); the race
# detector job uses it so the full matrix stays fast.
test-short:
	$(GO) test -short -race ./...

# Tier-1 verify: exactly what reviewers and the CI gate run.
verify: build test metrics-guard lint

# Metrics-name drift guard: the /metrics families the server exports are
# pinned by internal/core/testdata/metric_names.golden — renaming or
# dropping one breaks downstream dashboards silently. Regenerate the
# golden file with UPDATE_GOLDEN=1 when a change is deliberate.
metrics-guard:
	$(GO) test -run TestMetricNamesGolden ./internal/core

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Contract lint: xmovievet machine-checks the //xmovie:* annotations —
# no-retain delivery buffers, the timewheel pacing discipline, sync.Pool
# ownership, lock-holding conventions, and zero-alloc hot paths (see
# DESIGN.md "Static contracts"). Runs alongside go vet, not instead of it.
lint:
	$(GO) run ./cmd/xmovievet ./...

# Regenerate internal/gen from specs/ in place (the paper's step 2:
# formal description -> code).
generate:
	$(GO) run ./cmd/estgen -pkg pingpong -o internal/gen/pingpong/pingpong_gen.go specs/pingpong.est
	$(GO) run ./cmd/estgen -pkg abp -o internal/gen/abp/abp_gen.go specs/abp.est

# Fail when the committed generated sources drift from the specifications
# (byte-for-byte), and validate the interpreted-only skeleton.
generate-check:
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/estgen -pkg pingpong -o "$$tmp/pingpong_gen.go" specs/pingpong.est && \
	$(GO) run ./cmd/estgen -pkg abp -o "$$tmp/abp_gen.go" specs/abp.est && \
	cmp internal/gen/pingpong/pingpong_gen.go "$$tmp/pingpong_gen.go" && \
	cmp internal/gen/abp/abp_gen.go "$$tmp/abp_gen.go" && \
	$(GO) run ./cmd/estgen -check specs/mcam_skeleton.est && \
	echo "generated sources in sync with specs/"

# One iteration of every benchmark: a perf-regression smoke hook, not a
# measurement. CI runs it so later PRs inherit a baseline.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Hot-path guard: allocation-regression tests (pooled runtime cycle,
# append-path codecs, MTP stream paths — including the FrameSource send
# path and the zero-copy batched send path with its syscall-count bound —
# and the disk store's cached read path) + append-vs-schema byte-identity
# proofs and the cold/cached disk-read benchmark, then the mcambench
# -json smoke emitting BENCH_*.json into bench-out/.
bench-guard:
	$(GO) test -run='TestSendSelectFireAllocs|TestPDUEncodeAllocs|TestPPDUEncodeAllocs|TestStreamPathAllocs|TestFrameSourceSendAllocs|TestLiveTailSendAllocs|TestBatchedSendAllocs|TestBatchedSendSyscalls|TestDiskCachedReadAllocs|TestAppendMatchesSchemaEncoder' \
		./internal/estelle ./internal/mcam ./internal/presentation ./internal/mtp ./internal/moviedb
	$(GO) test -run='^$$' -bench='BenchmarkDiskStream' -benchtime=10x -benchmem ./internal/moviedb
	mkdir -p bench-out
	$(GO) run ./cmd/mcambench -json -outdir bench-out e4 hot

# Benchmark trajectory: every experiment and hot-path micro-benchmark plus
# the load-harness smoke profile (1000 concurrent sessions over the
# in-memory pipe, all-open barrier), each emitting BENCH_<name>.json into
# bench-out/. Exits nonzero on allocation-guard regressions or any
# load-harness error, so the trajectory doubles as a gate.
bench-trajectory:
	mkdir -p bench-out
	$(GO) run ./cmd/mcambench -json -outdir bench-out
	$(GO) run ./cmd/mcamload -profile smoke -json -outdir bench-out

# Load smoke: the mcamload soak profile under the race detector — 256
# sessions at 64-way concurrency over every stack×transport combination,
# 30s wall-clock cap. Exactly what the CI load-soak job runs.
load-smoke:
	mkdir -p bench-out
	$(GO) run -race ./cmd/mcamload -profile soak -json -outdir bench-out

# Stream-scenario load: the data-plane harness under the race detector.
# Every session plays a 125-frame movie paced at 250 fps over a lossy path
# whose bandwidth sustains only half that rate, with a mid-stream
# pause/resume; per-stream receive throughput and the adaptive sender's
# dropped/late frame counts land in BENCH_mcamload_stream.json. Runs in
# the CI load-soak job next to load-smoke.
load-stream:
	mkdir -p bench-out
	$(GO) run -race ./cmd/mcamload -scenarios stream -sessions 64 -concurrent 32 \
		-movies 16 -frames 125 -fps 250 -maxtime 90s \
		-json -out mcamload_stream -outdir bench-out

# Disk-backend load: every session streams its own durable movie twice —
# cold through the segment store's chunk cache, then cache-warm — flat
# out over a clean path. sessions == movies keeps the cold pass honest
# (each movie's first read really is cold). Cold/warm throughput and the
# cache hit/miss counters land in BENCH_mcamload_disk.json; runs in the
# CI load-soak job next to load-smoke and load-stream.
load-disk:
	mkdir -p bench-out
	$(GO) run -race ./cmd/mcamload -scenarios disk -sessions 48 -concurrent 16 \
		-movies 48 -frames 250 -maxtime 90s \
		-json -out mcamload_disk -outdir bench-out

# Live-broadcast load: one recorder keeps a movie live while 2000 viewers
# stream it concurrently — each appended frame encoded once and fanned out
# from the live window, late joiners replaying history before following
# the tail. Fan-out throughput, live-edge lag percentiles, and the
# late-joiner byte-identity verdict land in BENCH_mcamload_broadcast.json.
# The small fan-out regression test runs under the race detector first;
# the 2000-viewer run itself cannot (2000 stream + receiver goroutines
# exceed the race runtime's ~8k goroutine budget).
load-broadcast:
	$(GO) test -race -run 'TestLiveBroadcastFanOut' ./internal/mcam
	mkdir -p bench-out
	$(GO) run ./cmd/mcamload -scenarios broadcast -sessions 2000 -concurrent 2000 \
		-frames 400 -maxtime 180s \
		-json -out mcamload_broadcast -outdir bench-out

# Chaos load: fault injection with asserted recovery shapes — a slow-disk
# stream degraded with skips (never a wedged sender), a mid-stream
# partition-and-heal, a latency spike, and a thundering-herd reconnect of
# 1000 backoff clients across a server kill/restart with one interrupted
# stream resumed byte-identically. Recovery percentiles land in
# BENCH_mcamload_chaos.json. The small partition-and-heal regression test
# runs under the race detector first; the 1000-client herd itself runs
# without it (the storm's goroutine count and timing assertions do not
# mix with race instrumentation).
load-chaos:
	$(GO) test -race -run 'TestPartitionHealMidStream' .
	mkdir -p bench-out
	$(GO) run ./cmd/mcamload -scenarios chaos -sessions 1000 -concurrent 128 \
		-movies 8 -frames 240 -fps 120 -stacks generated,handcoded \
		-json -out mcamload_chaos -outdir bench-out

# Multi-tenant QoS load: two tenant classes (gold prio 10, free prio 0)
# contend past MaxSessions — every gold connection must preempt a free
# session — then stream past their per-class bandwidth caps concurrently,
# asserting per-class throughput within ±10% of each cap, and a /metrics
# scrape exposing every exported family. The per-tenant admission,
# preemption and bandwidth-cap regression tests run under the race
# detector first; outcomes land in BENCH_mcamload_qos.json.
load-qos:
	$(GO) test -race -run 'TestTenantQuota|TestPriorityPreemption|TestTenantBandwidthCap|TestMetricsEndpointScrape' ./internal/core
	mkdir -p bench-out
	$(GO) run ./cmd/mcamload -scenarios qos -stacks generated,handcoded -maxtime 90s \
		-json -out mcamload_qos -outdir bench-out

# Scale load: the conn-multiplexing client mode — a tier ladder of logical
# sessions (1k/5k/10k by default) multiplexed over 64 pooled control
# connections, asserting a 250ms p99 SLO and a 4KB marginal-memory-per-
# session ceiling at every tier; the sessions-vs-latency curve lands in
# BENCH_mcamload_scale.json. MCAMLOAD_SCALE_FULL=1 raises the ladder to
# 10k/50k/100k (the full tier; a few seconds per stack, so it stays out
# of the default CI path). The zero-copy batch-send regression tests run
# under the race detector first.
load-scale:
	$(GO) test -race -run 'TestBatchedSendSyscalls|TestSendVecConsumesBeforeReturn' ./internal/mtp
	mkdir -p bench-out
	$(GO) run ./cmd/mcamload -scenarios scale -stacks generated,handcoded -maxtime 120s \
		-json -out mcamload_scale -outdir bench-out

# Everything CI checks, locally.
ci: fmt-check vet lint build generate-check test-short test bench-smoke bench-guard \
	bench-trajectory load-smoke load-stream load-disk load-broadcast load-chaos \
	load-qos load-scale
