module xmovie

go 1.24
