// Command xmovievet machine-checks this repository's hand-maintained
// contracts: no-retain delivery buffers, the timewheel pacing discipline,
// sync.Pool ownership, lock-holding conventions, and zero-alloc hot
// paths. It is stdlib-only and runs as part of `make lint`.
//
// Usage:
//
//	xmovievet [-only name,name] [-list] [packages...]
//
// Packages default to ./... relative to the current directory. Exit
// status is 1 when any diagnostic is reported, 2 on operational failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xmovie/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	dir := flag.String("C", ".", "change to this directory before loading packages")
	flag.Parse()

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "xmovievet: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmovievet:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmovievet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "xmovievet: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}
