// Command mcamui generates an interactive text interface from an Estelle
// specification — the stand-in for the paper's X-interface generator
// (refs [10], [13]). It parses the given specification, instantiates it
// (interpreted), and attaches a prompt to one module's interaction point:
// every message the channel allows becomes a command; everything the
// module emits is printed on arrival.
//
// Usage:
//
//	mcamui -spec specs/mcam_skeleton.est -modvar mca -ip U
//
// The default drives the MCA skeleton's user interface. Spec paths are
// resolved on disk first; the specs/*.est corpus embedded in the xmovie
// package is the fallback, so the default works from any directory.
package main

import (
	"flag"
	"fmt"
	"os"

	"xmovie"
	"xmovie/internal/chanui"
	"xmovie/internal/estelle"
	"xmovie/internal/estelle/estparse"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mcamui:", err)
		os.Exit(1)
	}
}

func run() error {
	specFile := flag.String("spec", "specs/mcam_skeleton.est", "Estelle specification")
	modvar := flag.String("modvar", "mca", "configuration module variable to attach to")
	ipName := flag.String("ip", "U", "interaction point to drive")
	flag.Parse()

	src, err := os.ReadFile(*specFile)
	if err != nil {
		// Not on disk: try the embedded corpus so the documented default
		// (-spec specs/mcam_skeleton.est) works from any directory.
		embedded, eerr := xmovie.Specs.ReadFile(*specFile)
		if eerr != nil {
			return err
		}
		src = embedded
	}
	spec, err := estparse.Parse(string(src))
	if err != nil {
		return err
	}
	compiled, err := estparse.Compile(spec, estelle.DispatchTable)
	if err != nil {
		return err
	}
	// External modules get echoing stub bodies: they acknowledge whatever
	// arrives so the driven module's FSM can progress.
	for _, m := range spec.Modules {
		if !m.External {
			continue
		}
		mod := m
		compiled.Externals[mod.Name] = func() estelle.Body {
			return estelle.BodyFunc(func(ctx *estelle.Ctx) bool {
				worked := false
				for _, ipd := range mod.IPs {
					ip := ctx.Self().IP(ipd.Name)
					for {
						in := ip.PopInput()
						if in == nil {
							break
						}
						worked = true
						fmt.Printf("   [%s] consumed %s\n", mod.Name, in.Name)
					}
				}
				return worked
			})
		}
	}
	rt := estelle.NewRuntime()
	insts, err := compiled.Build(rt)
	if err != nil {
		return err
	}
	inst, ok := insts[*modvar]
	if !ok {
		return fmt.Errorf("specification has no modvar %q", *modvar)
	}
	ui, err := chanui.New(inst.IP(*ipName), os.Stdout)
	if err != nil {
		return err
	}
	// Sink the module's other unconnected IPs so every output is visible.
	for _, m := range spec.Modules {
		if m.Name != inst.Def().Name {
			continue
		}
		for _, ipd := range m.IPs {
			if ipd.Name == *ipName {
				continue
			}
			name := ipd.Name
			// Sinks only take effect on unconnected IPs; connected ones
			// keep routing to their peers.
			inst.IP(name).SetSink(func(in *estelle.Interaction) {
				fmt.Printf("   [%s.%s] %s\n", *modvar, name, in.Name)
			})
		}
	}
	sched := estelle.NewScheduler(rt, estelle.MapPerSystem)
	if err := sched.Start(); err != nil {
		return err
	}
	defer sched.Stop()
	fmt.Printf("driving %s.%s of specification %s (state %s)\n",
		*modvar, *ipName, spec.Name, inst.State())
	return ui.Run(os.Stdin)
}
