package main

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xmovie/internal/core"
	"xmovie/internal/mcam"
)

// The scale scenario is the conn-multiplexing client mode: instead of one
// control connection (and its goroutines) per session, a small pool of
// pooled connections carries the traffic of tens of thousands of logical
// sessions. Each logical session is a few dozen bytes of harness state; a
// fixed worker pool drains the session set through the pooled conns, so
// the harness models ~100k sessions without ~100k goroutines or sockets —
// the only way a single process can drive the population the zero-copy
// delivery path is sized for.
//
// Each tier asserts two SLOs: the p99 control-op latency must stay under
// scaleP99SLO, and the harness-side memory per logical session (heap delta
// across session + conn-pool setup, divided by the tier's session count)
// must stay under scaleSessionBytes. Tiers ladder up to -sessions; the
// default `make load-scale` run tops out at 10k and the full 100k tier is
// enabled with MCAMLOAD_SCALE_FULL=1.

const (
	// scaleOpsPerSession is how many control calls each logical session
	// performs (stateless queries, so pooled conns can interleave sessions
	// without per-conn selection state).
	scaleOpsPerSession = 2
	// scaleP99SLO bounds the per-op p99 latency. Control ops over the
	// in-process pipe run in microseconds; the bound is generous enough
	// for loaded CI machines while still catching a pacing or contention
	// collapse.
	scaleP99SLO = 250 * time.Millisecond
	// scaleSessionBytes bounds the harness-side marginal memory per
	// logical session (session struct + latency samples; the fixed conn
	// pool is excluded — it not growing with sessions is the point of
	// multiplexing). A goroutine-per-session design blows through this by
	// two orders of magnitude (8KB+ of stack each).
	scaleSessionBytes = 4096
	// scaleFullEnv enables the full tier ladder (up to -sessions even when
	// that is 100k); without it `make load-scale` stays CI-sized.
	scaleFullEnv = "MCAMLOAD_SCALE_FULL"
)

// scaleTierResult is one measured tier of the ladder.
type scaleTierResult struct {
	sessions      int
	conns         int
	ops           int
	wall          time.Duration
	p50, p95, p99 time.Duration
	bytesPerSess  uint64
	sloOK         bool
}

func (t scaleTierResult) opsPerSec() float64 {
	if t.wall <= 0 {
		return 0
	}
	return float64(t.ops) / t.wall.Seconds()
}

// scaleAgg collects the tier ladder for the report.
type scaleAgg struct {
	tiers []scaleTierResult
}

// scaleTiers is the session-count ladder: a tenth, half, and all of max,
// deduplicated — so `-sessions 100000` measures 10k/50k/100k and the
// sessions-vs-latency curve lands in one run's report.
func scaleTiers(max int) []int {
	var tiers []int
	for _, n := range []int{max / 10, max / 2, max} {
		if n < 1 {
			continue
		}
		if len(tiers) > 0 && tiers[len(tiers)-1] == n {
			continue
		}
		tiers = append(tiers, n)
	}
	return tiers
}

// runScaleCombo drives the tier ladder against one fresh server. Validated
// at startup to be the sole scenario in the mix.
func runScaleCombo(cfg loadConfig, stack core.StackKind, tr string) *comboResult {
	res := newComboResult(stack.String(), tr)
	cenv, err := seedEnv(cfg)
	if err != nil {
		res.fail(fmt.Sprintf("seed: %v", err))
		return res
	}
	defer cenv.cleanup()
	defer cenv.sim.Close()
	addr := ""
	if tr == "tcp" {
		addr = "127.0.0.1:0"
	}
	srv, err := core.NewServer(core.ServerConfig{Addr: addr, Stack: stack, Env: cenv.env})
	if err != nil {
		res.fail(fmt.Sprintf("server: %v", err))
		return res
	}
	defer srv.Close()

	agg := &scaleAgg{}
	res.scale = agg
	start := time.Now()
	for _, tier := range scaleTiers(cfg.Sessions) {
		tres, lat, err := runScaleTier(cfg, srv, stack, res.transport, tier)
		if err != nil {
			res.addErr(fmt.Sprintf("scale tier %d: %v", tier, err))
			break
		}
		agg.tiers = append(agg.tiers, tres)
		if !tres.sloOK {
			res.addErr(fmt.Sprintf("scale tier %d: SLO violated: p99=%v (bound %v), mem/session=%dB (bound %dB)",
				tier, tres.p99, scaleP99SLO, tres.bytesPerSess, scaleSessionBytes))
		}
		res.mu.Lock()
		res.completed += tier
		res.ops["query"] = append(res.ops["query"], lat...)
		res.mu.Unlock()
	}
	res.wall = time.Since(start)
	res.peak = srv.Observe().Sessions.Peak
	res.serverStreams = cenv.env.StreamTotals.Snapshot()
	return res
}

// scaleSession is one logical session's entire harness footprint. Keeping
// it to a few machine words is what the per-session memory SLO pins.
type scaleSession struct {
	movie uint32 // catalogue index the session queries
	ops   uint32 // completed control calls
}

// runScaleTier runs one tier: build the session set and the conn pool,
// measure the heap cost per session, then drain every session's ops
// through the pool with one worker goroutine per pooled conn.
func runScaleTier(cfg loadConfig, srv *core.Server, stack core.StackKind, transport string, tier int) (scaleTierResult, []time.Duration, error) {
	nconns := cfg.Concurrent
	if nconns > tier {
		nconns = tier
	}
	if nconns < 1 {
		nconns = 1
	}

	conns := make([]*core.Client, nconns)
	for i := range conns {
		c, err := dial(srv, stack, transport)
		if err != nil {
			for _, cc := range conns[:i] {
				cc.Close()
			}
			return scaleTierResult{}, nil, fmt.Errorf("dial pooled conn %d: %w", i, err)
		}
		conns[i] = c
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	// Marginal heap cost per logical session: what the tier holds alive
	// per session — the session structs and the latency sample store —
	// measured after the conn pool exists, since the pool is a fixed cost
	// shared by every tier (that fixed cost staying fixed IS the point of
	// multiplexing: sessions must not each bring a conn or goroutine).
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	sessions := make([]scaleSession, tier)
	for i := range sessions {
		sessions[i].movie = uint32(i % cfg.Movies)
	}
	lat := make([]time.Duration, tier*scaleOpsPerSession)
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	var perSession uint64
	if m1.HeapAlloc > m0.HeapAlloc {
		perSession = (m1.HeapAlloc - m0.HeapAlloc) / uint64(tier)
	}

	// Drain: workers own one pooled conn each and claim sessions off a
	// shared cursor; every logical session's ops run back to back on
	// whichever conn picked it up.
	var (
		next    atomic.Int64
		stopped atomic.Bool
		errMu   sync.Mutex
		runErr  error
	)
	fail := func(e error) {
		errMu.Lock()
		if runErr == nil {
			runErr = e
		}
		errMu.Unlock()
		stopped.Store(true)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < nconns; w++ {
		wg.Add(1)
		go func(client *core.Client) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= tier || stopped.Load() {
					return
				}
				s := &sessions[i]
				movie := fmt.Sprintf("cat-%03d", s.movie)
				for k := 0; k < scaleOpsPerSession; k++ {
					t0 := time.Now()
					resp, err := client.Call(&mcam.Request{Op: mcam.OpQueryAttributes, Movie: movie})
					if err != nil {
						fail(fmt.Errorf("session %d query: %w", i, err))
						return
					}
					if !resp.OK() {
						fail(fmt.Errorf("session %d query: %s (%s)", i, resp.Status, resp.Diagnostic))
						return
					}
					lat[i*scaleOpsPerSession+k] = time.Since(t0)
					s.ops++
				}
			}
		}(conns[w])
	}
	wg.Wait()
	wall := time.Since(start)
	if runErr != nil {
		return scaleTierResult{}, nil, runErr
	}
	for i := range sessions {
		if sessions[i].ops != scaleOpsPerSession {
			return scaleTierResult{}, nil, fmt.Errorf("session %d completed %d/%d ops", i, sessions[i].ops, scaleOpsPerSession)
		}
	}

	tr := scaleTierResult{
		sessions:     tier,
		conns:        nconns,
		ops:          len(lat),
		wall:         wall,
		p50:          percentile(lat, 50),
		p95:          percentile(lat, 95),
		p99:          percentile(lat, 99),
		bytesPerSess: perSession,
	}
	tr.sloOK = tr.p99 <= scaleP99SLO && tr.bytesPerSess <= scaleSessionBytes
	return tr, lat, nil
}

// scaleFull reports whether the full tier ladder is enabled.
func scaleFull() bool {
	return os.Getenv(scaleFullEnv) == "1"
}
