package main

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"xmovie/internal/core"
	"xmovie/internal/directory"
	"xmovie/internal/equipment"
	"xmovie/internal/mcam"
	"xmovie/internal/moviedb"
	"xmovie/internal/mtp"
	"xmovie/internal/netsim"
	"xmovie/internal/spa"
	"xmovie/internal/transport"
)

// Scenario names. A session runs one scenario; the configured mix is cycled
// over session indices.
const (
	scenarioBrowse = "browse"
	scenarioOrder  = "order"
	scenarioPlay   = "play"
	scenarioMixed  = "mixed"
	// scenarioStream plays a movie end to end over a congested, lossy
	// path with a mid-stream pause/resume, measuring data-plane
	// throughput and the adaptive sender's frame dropping.
	scenarioStream = "stream"
	// scenarioDisk streams a disk-resident movie twice over a clean path,
	// flat out: the first pass reads cold through the segment store's
	// chunk cache, the second pass hits it — the cold-vs-cached read
	// throughput of the durable backend. Selecting it switches the whole
	// combo's catalogue onto a disk store in a temporary directory. The
	// cold pass is honest while each session has its own movie (sessions
	// <= movies, as `make load-disk` arranges); beyond that, later
	// sessions re-read cache-warm movies.
	scenarioDisk = "disk"
	// scenarioBroadcast is the live fan-out shape: one recorder keeps a
	// single movie live while every session is a viewer of it, measuring
	// aggregate fan-out throughput and live-edge lag percentiles. It must
	// be the sole scenario in the mix (the recorder/viewer split replaces
	// the per-session loop) and needs concurrent >= sessions, since every
	// viewer stream stays open until the broadcast seals. See broadcast.go.
	scenarioBroadcast = "broadcast"
	// scenarioChaos is the fault-injection shape: four sub-scenarios
	// (slow-disk skips, mid-stream partition-and-heal, latency spike, and
	// a thundering-herd reconnect of -sessions clients across a server
	// kill/restart with one resumed, byte-identical stream) with asserted
	// recovery shapes. Sole scenario in the mix; see chaos.go.
	scenarioChaos = "chaos"
	// scenarioScale is the conn-multiplexing client mode: a tier ladder of
	// logical sessions (up to -sessions) multiplexed over -concurrent
	// pooled control connections, with p99 latency and per-session memory
	// SLOs asserted at every tier. Sole scenario in the mix; see scale.go.
	scenarioScale = "scale"
)

// streamFrameSize is the seeded catalogue's frame payload size in bytes.
const streamFrameSize = 64

// loadConfig is the resolved harness configuration.
type loadConfig struct {
	Sessions   int
	Concurrent int
	Movies     int
	Frames     int
	// FPS is the seeded movies' frame rate — the pacing of every play.
	FPS        int
	Stacks     []core.StackKind
	Transports []string
	Scenarios  []string
	// Hold makes every session dial and then wait until all Sessions are
	// simultaneously open before running its operations — proving the
	// server really sustains that many concurrent sessions (the combo's
	// peak equals Sessions) rather than fast sessions finishing before
	// slow ones start. Requires Concurrent >= Sessions.
	Hold bool
}

// holdPoint is the all-sessions-open barrier used when loadConfig.Hold is
// set.
type holdPoint struct {
	target int
	mu     sync.Mutex
	n      int
	ch     chan struct{}
}

func newHoldPoint(target int) *holdPoint {
	return &holdPoint{target: target, ch: make(chan struct{})}
}

// arrive reports this session connected and blocks until every session is.
func (h *holdPoint) arrive() error {
	h.mu.Lock()
	h.n++
	if h.n == h.target {
		close(h.ch)
	}
	h.mu.Unlock()
	select {
	case <-h.ch:
		return nil
	case <-time.After(sessionTimeout):
		return fmt.Errorf("hold barrier: only %d/%d sessions connected", h.count(), h.target)
	}
}

func (h *holdPoint) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// sessionTimeout bounds any single blocking step inside a session so a
// wedged association shows up as an error, not a hang.
const sessionTimeout = 60 * time.Second

// runAll executes every stack×transport combination and aggregates a
// report.
func runAll(cfg loadConfig, deadline time.Time, logw io.Writer) *Report {
	rep := &Report{cfg: cfg}
	for _, stack := range cfg.Stacks {
		for _, tr := range cfg.Transports {
			res := runCombo(cfg, stack, tr, deadline)
			rep.combos = append(rep.combos, res)
			fmt.Fprintf(logw, "[%s/%s] %d sessions (%d-way) in %.2fs: %.0f sessions/s, %d ops, %d errors%s\n",
				res.stack, res.transport, res.completed, cfg.Concurrent,
				res.wall.Seconds(), res.sessionsPerSec(), res.opCount(), len(res.errs),
				map[bool]string{true: fmt.Sprintf(", %d SKIPPED (deadline)", res.skipped), false: ""}[res.skipped > 0])
		}
	}
	return rep
}

// comboEnv is one combo's seeded environment plus the resources behind it.
type comboEnv struct {
	env *mcam.ServerEnv
	sim *mcam.SimNet
	// cache is the disk store's chunk cache (nil on memory combos); its
	// stats land in the report.
	cache   *moviedb.ChunkCache
	cleanup func()
}

// seedEnv builds one combo's server environment: a movie store seeded with
// the lazily generated catalogue (no frame materialization in memory — the
// play path streams through chunked FrameSources), a striped directory
// mirror, a SimNet for stream targets, adaptive delivery enabled, and
// server-wide data-plane totals. A scenario mix containing the disk
// scenario moves the whole catalogue onto a durable sharded segment store
// under a temporary directory, plus a flat-out (unpaced) disk catalogue for
// the cold-vs-cached throughput measurement.
func seedEnv(cfg loadConfig) (*comboEnv, error) {
	wantDisk, wantCat, wantLive := false, false, false
	for _, sc := range cfg.Scenarios {
		switch sc {
		case scenarioDisk:
			wantDisk = true
		case scenarioBroadcast:
			wantLive = true
		default:
			wantCat = true
		}
	}
	var store moviedb.Store
	cenv := &comboEnv{cleanup: func() {}}
	if wantDisk {
		dir, err := os.MkdirTemp("", "mcamload-disk-*")
		if err != nil {
			return nil, err
		}
		cache := moviedb.NewChunkCache(0)
		ds, err := moviedb.OpenShardedDiskStore(dir, 0, moviedb.DiskConfig{Cache: cache})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		store = ds
		cenv.cache = cache
		cenv.cleanup = func() {
			ds.Close()
			os.RemoveAll(dir)
		}
		for i := 0; i < cfg.Movies; i++ {
			// FrameRate 0: the disk catalogue streams unpaced, so the
			// measured throughput is the read path, not the pacing clock.
			m := moviedb.SynthesizeLazy(moviedb.SynthConfig{
				Name:      fmt.Sprintf("disk-%03d", i),
				Frames:    cfg.Frames,
				FrameSize: streamFrameSize,
			})
			m.FrameRate = 0
			if err := store.Create(m); err != nil {
				cenv.cleanup()
				return nil, err
			}
		}
	} else {
		store = moviedb.NewShardedStore(0)
	}
	// The paced cat-* catalogue only exists when a scenario in the mix
	// plays it — a disk-only run skips draining it to the temp store.
	for i := 0; wantCat && i < cfg.Movies; i++ {
		m := moviedb.SynthesizeLazy(moviedb.SynthConfig{
			Name:      fmt.Sprintf("cat-%03d", i),
			Frames:    cfg.Frames,
			FrameRate: cfg.FPS,
			FrameSize: streamFrameSize,
		})
		if err := store.Create(m); err != nil {
			cenv.cleanup()
			return nil, err
		}
	}
	// The broadcast scenario records through the equipment chain into one
	// initially-empty movie; its zero frame rate keeps viewers unpaced, so
	// the measured fan-out is the live path, not the pacing clock.
	var eua *equipment.EUA
	if wantLive {
		eca := equipment.NewECA("studio")
		if err := eca.Register(equipment.NewCamera("cam1", streamFrameSize)); err != nil {
			cenv.cleanup()
			return nil, err
		}
		eua = equipment.NewEUA(eca, "load")
		if err := store.Create(&moviedb.Movie{Name: broadcastMovie}); err != nil {
			cenv.cleanup()
			return nil, err
		}
	}
	sim := mcam.NewSimNet()
	base := directory.MustParseDN("c=DE/o=xmovie")
	// Adaptive delivery needs receivers that emit feedback; only the
	// stream scenario's do, so the window stays off for mixes without it
	// (a windowed sender facing a silent receiver stops after one window).
	window := 0
	for _, sc := range cfg.Scenarios {
		if sc == scenarioStream {
			window = 64
		}
	}
	cenv.env = &mcam.ServerEnv{
		Store:        store,
		Dialer:       sim,
		DUA:          directory.NewDUA(directory.NewDSA("load", base)),
		DirBase:      base,
		EUA:          eua,
		StreamWindow: window,
		StreamTotals: &spa.Totals{},
	}
	cenv.sim = sim
	return cenv, nil
}

// runCombo drives cfg.Sessions sessions against a fresh server over one
// stack×transport pair.
func runCombo(cfg loadConfig, stack core.StackKind, tr string, deadline time.Time) *comboResult {
	if cfg.Scenarios[0] == scenarioBroadcast {
		// Broadcast replaces the independent-session loop with one
		// recorder fanning out to cfg.Sessions viewers (validated at
		// startup to be the sole scenario in the mix).
		return runBroadcastCombo(cfg, stack, tr)
	}
	if cfg.Scenarios[0] == scenarioChaos {
		// Chaos replaces the loop with its fault-injection phases
		// (likewise validated to be the sole scenario).
		return runChaosCombo(cfg, stack, tr)
	}
	if cfg.Scenarios[0] == scenarioQoS {
		// QoS replaces the loop with its admission/isolation/metrics
		// phases (likewise validated to be the sole scenario).
		return runQoSCombo(cfg, stack, tr)
	}
	if cfg.Scenarios[0] == scenarioScale {
		// Scale replaces the goroutine-per-session loop with the
		// conn-multiplexing tier ladder (likewise validated to be the
		// sole scenario).
		return runScaleCombo(cfg, stack, tr)
	}
	res := newComboResult(stack.String(), tr)
	cenv, err := seedEnv(cfg)
	if err != nil {
		res.fail(fmt.Sprintf("seed: %v", err))
		return res
	}
	defer cenv.cleanup()
	env, sim := cenv.env, cenv.sim
	defer sim.Close()
	addr := ""
	if tr == "tcp" {
		addr = "127.0.0.1:0"
	}
	srv, err := core.NewServer(core.ServerConfig{Addr: addr, Stack: stack, Env: env})
	if err != nil {
		res.fail(fmt.Sprintf("server: %v", err))
		return res
	}
	defer srv.Close()

	var hold *holdPoint
	if cfg.Hold {
		hold = newHoldPoint(cfg.Sessions)
	}
	start := time.Now()
	sem := make(chan struct{}, cfg.Concurrent)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		if hold == nil && !deadline.IsZero() && time.Now().After(deadline) {
			// (With a hold barrier sessions block on each other, so
			// skipping any would wedge the rest; the barrier's own timeout
			// is the backstop instead.)
			res.skip(cfg.Sessions - i)
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			scenario := cfg.Scenarios[i%len(cfg.Scenarios)]
			if err := runSession(cfg, srv, sim, stack, tr, scenario, i, hold, res); err != nil {
				res.addErr(fmt.Sprintf("session %d (%s): %v", i, scenario, err))
			} else {
				res.done()
			}
		}(i)
	}
	wg.Wait()
	res.wall = time.Since(start)
	res.serverStreams = env.StreamTotals.Snapshot()
	if cenv.cache != nil {
		cs := cenv.cache.Stats()
		res.cache = &cs
	}
	st := srv.Observe().Sessions
	if st.Rejected > 0 {
		res.addErr(fmt.Sprintf("server rejected %d connections", st.Rejected))
	}
	res.peak = st.Peak
	// With the all-open barrier the concurrency claim is asserted, not
	// inferred: every session was open at once or the combo fails.
	if hold != nil && st.Peak < int64(cfg.Sessions) {
		res.addErr(fmt.Sprintf("hold barrier: peak active sessions %d < %d", st.Peak, cfg.Sessions))
	}
	return res
}

// dial opens the session's control connection over the combo transport.
func dial(srv *core.Server, stack core.StackKind, tr string) (*core.Client, error) {
	ccfg := core.ClientConfig{Stack: stack, CallTimeout: sessionTimeout}
	if tr == "tcp" {
		return core.Dial(srv.Addr(), ccfg)
	}
	cliEnd, srvEnd := transport.Pipe(0)
	if err := srv.ServeConn(srvEnd); err != nil {
		cliEnd.Close()
		return nil, err
	}
	return core.NewClientConn(cliEnd, ccfg)
}

// runSession is one complete client session: dial, run the scenario's
// operations (each timed into the combo's histograms), release.
func runSession(cfg loadConfig, srv *core.Server, sim *mcam.SimNet, stack core.StackKind, tr, scenario string, i int, hold *holdPoint, res *comboResult) error {
	t0 := time.Now()
	client, err := dial(srv, stack, tr)
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	res.op("dial", time.Since(t0))
	closed := false
	defer func() {
		if !closed {
			client.Close()
		}
	}()
	if hold != nil {
		if err := hold.arrive(); err != nil {
			return err
		}
	}

	feature := fmt.Sprintf("cat-%03d", i%cfg.Movies)
	call := func(opName string, req *mcam.Request) error {
		t := time.Now()
		resp, err := client.Call(req)
		if err != nil {
			return fmt.Errorf("%s: %w", opName, err)
		}
		if !resp.OK() {
			return fmt.Errorf("%s: %s (%s)", opName, resp.Status, resp.Diagnostic)
		}
		res.op(opName, time.Since(t))
		return nil
	}

	if scenario == scenarioBrowse || scenario == scenarioMixed {
		if err := call("list", &mcam.Request{Op: mcam.OpListMovies}); err != nil {
			return err
		}
		if err := call("query", &mcam.Request{Op: mcam.OpQueryAttributes, Movie: feature}); err != nil {
			return err
		}
	}
	if scenario == scenarioOrder || scenario == scenarioMixed {
		mine := fmt.Sprintf("order-%s-%s-%05d", res.stack, res.transport, i)
		if err := call("create", &mcam.Request{Op: mcam.OpCreate, Movie: mine,
			Attrs: []mcam.Attr{{Name: "title", Value: mine}}}); err != nil {
			return err
		}
		if err := call("select", &mcam.Request{Op: mcam.OpSelect, Movie: mine}); err != nil {
			return err
		}
		if err := call("modify", &mcam.Request{Op: mcam.OpModifyAttributes,
			Attrs: []mcam.Attr{{Name: "year", Value: "1994"}}}); err != nil {
			return err
		}
		if err := call("delete", &mcam.Request{Op: mcam.OpDelete, Movie: mine}); err != nil {
			return err
		}
	}
	if scenario == scenarioStream {
		if err := runStreamSession(cfg, sim, client, res, feature, i); err != nil {
			return err
		}
	}
	if scenario == scenarioDisk {
		if err := runDiskSession(cfg, sim, client, res, i); err != nil {
			return err
		}
	}
	if scenario == scenarioPlay || scenario == scenarioMixed {
		if err := call("select", &mcam.Request{Op: mcam.OpSelect, Movie: feature}); err != nil {
			return err
		}
		addr := fmt.Sprintf("sess-%s-%s-%05d/video", res.stack, res.transport, i)
		end, err := sim.Listen(addr, netsim.Config{})
		if err != nil {
			return fmt.Errorf("listen: %w", err)
		}
		recvDone := make(chan mtp.RecvStats, 1)
		go func() {
			st, _ := mtp.ReceiveStream(end, mtp.ReceiverConfig{}, nil)
			recvDone <- st
		}()
		t := time.Now()
		resp, err := client.Call(&mcam.Request{Op: mcam.OpPlay, StreamAddr: addr})
		if err != nil || !resp.OK() {
			return fmt.Errorf("play: %+v, %v", resp, err)
		}
		res.op("play", time.Since(t))
		id := resp.StreamID
		if err := call("pause", &mcam.Request{Op: mcam.OpPause, StreamID: id}); err != nil {
			return err
		}
		if err := call("resume", &mcam.Request{Op: mcam.OpResume, StreamID: id}); err != nil {
			return err
		}
		if err := call("stop", &mcam.Request{Op: mcam.OpStop, StreamID: id}); err != nil {
			return err
		}
		select {
		case <-recvDone:
		case <-time.After(sessionTimeout):
			return fmt.Errorf("stream did not terminate after stop")
		}
	}
	t := time.Now()
	closed = true
	if err := client.Close(); err != nil {
		return fmt.Errorf("release: %w", err)
	}
	res.op("release", time.Since(t))
	res.session(time.Since(t0))
	return nil
}

// runDiskSession measures the durable backend's read path: the session's
// disk-resident movie is streamed twice over a clean (unshaped) SimNet
// path, flat out. The first pass reads the segment file through the chunk
// cache cold; the second streams from the cache. Per-pass receiver
// throughput lands in the report's disk-cold/disk-warm aggregates next to
// the combo-wide cache hit/miss counters.
func runDiskSession(cfg loadConfig, sim *mcam.SimNet, client *core.Client, res *comboResult, i int) error {
	movie := fmt.Sprintf("disk-%03d", i%cfg.Movies)
	for _, phase := range []string{"disk-cold", "disk-warm"} {
		addr := fmt.Sprintf("%s-%s-%s-%05d/video", phase, res.stack, res.transport, i)
		end, err := sim.Listen(addr, netsim.Config{})
		if err != nil {
			return fmt.Errorf("%s listen: %w", phase, err)
		}
		recvDone := make(chan mtp.RecvStats, 1)
		go func() {
			// The receiver emits feedback so the pass also works when a
			// stream scenario in the mix armed the adaptive window.
			st, _ := mtp.ReceiveStream(end, mtp.ReceiverConfig{Window: 64, FeedbackEvery: 8}, nil)
			recvDone <- st
		}()
		t := time.Now()
		resp, err := client.Call(&mcam.Request{Op: mcam.OpPlay, Movie: movie, StreamAddr: addr})
		if err != nil {
			return fmt.Errorf("%s play: %w", phase, err)
		}
		if !resp.OK() {
			return fmt.Errorf("%s play: %s (%s)", phase, resp.Status, resp.Diagnostic)
		}
		select {
		case st := <-recvDone:
			res.op(phase, time.Since(t))
			if st.Delivered+st.Lost != cfg.Frames {
				return fmt.Errorf("%s accounting: delivered %d + lost %d != %d",
					phase, st.Delivered, st.Lost, cfg.Frames)
			}
			if st.Delivered == 0 {
				return fmt.Errorf("%s delivered nothing", phase)
			}
			res.diskStream(phase, st)
		case <-time.After(sessionTimeout):
			return fmt.Errorf("%s stream did not terminate", phase)
		}
	}
	return nil
}

// runStreamSession is the data-plane scenario: play a whole movie over a
// lossy path whose bandwidth sustains only about half the frame rate, with
// a mid-stream pause/resume, and record per-stream throughput and frame
// accounting. The receiver emits MTP feedback, so the server's adaptive
// sender drops frames at their deadlines instead of queueing — the counts
// land in the combo's stream metrics and the server-wide totals.
func runStreamSession(cfg loadConfig, sim *mcam.SimNet, client *core.Client, res *comboResult, movie string, i int) error {
	addr := fmt.Sprintf("stream-%s-%s-%05d/video", res.stack, res.transport, i)
	// Half the stream's nominal bit rate, plus loss: congestion by
	// construction.
	shape := netsim.Config{
		LossProb:   0.05,
		Seed:       int64(i + 1),
		BitsPerSec: int64(cfg.FPS) * streamFrameSize * 8 / 2,
	}
	end, err := sim.Listen(addr, shape)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	recvDone := make(chan mtp.RecvStats, 1)
	go func() {
		st, _ := mtp.ReceiveStream(end, mtp.ReceiverConfig{Window: 32, FeedbackEvery: 8}, nil)
		recvDone <- st
	}()
	t := time.Now()
	resp, err := client.Call(&mcam.Request{Op: mcam.OpPlay, Movie: movie, StreamAddr: addr})
	if err != nil {
		return fmt.Errorf("play: %w", err)
	}
	if !resp.OK() {
		return fmt.Errorf("play: %s (%s)", resp.Status, resp.Diagnostic)
	}
	res.op("play", time.Since(t))
	id := resp.StreamID

	// Mid-stream pause/resume: the stream must survive it and the paused
	// interval must not burn the pacing schedule.
	time.Sleep(10 * time.Millisecond)
	t = time.Now()
	if r, err := client.Call(&mcam.Request{Op: mcam.OpPause, StreamID: id}); err != nil || !r.OK() {
		return fmt.Errorf("pause: %+v, %v", r, err)
	}
	res.op("pause", time.Since(t))
	time.Sleep(10 * time.Millisecond)
	t = time.Now()
	if r, err := client.Call(&mcam.Request{Op: mcam.OpResume, StreamID: id}); err != nil || !r.OK() {
		return fmt.Errorf("resume: %+v, %v", r, err)
	}
	res.op("resume", time.Since(t))

	select {
	case st := <-recvDone:
		if st.Delivered == 0 {
			return fmt.Errorf("stream delivered nothing (stats %+v)", st)
		}
		if st.Delivered+st.Lost != cfg.Frames {
			return fmt.Errorf("stream accounting: delivered %d + lost %d != %d",
				st.Delivered, st.Lost, cfg.Frames)
		}
		res.stream(st)
	case <-time.After(sessionTimeout):
		return fmt.Errorf("stream did not terminate")
	}
	return nil
}
