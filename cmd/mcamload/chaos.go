package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xmovie"
	"xmovie/internal/chaos"
	"xmovie/internal/core"
	"xmovie/internal/mcam"
	"xmovie/internal/moviedb"
	"xmovie/internal/mtp"
	"xmovie/internal/netsim"
)

// The chaos scenario: instead of healthy sessions, the combo runs four
// fault-injection sub-scenarios in sequence and asserts the recovery shape
// of each — the degradation contract under failure, measured rather than
// hoped for:
//
//  1. slow-disk: a FaultStore injects stalls under a server with a bounded
//     StreamReadTimeout; the stream must finish with skipped frames
//     (FlagSkip losses at the receiver), never a wedged sender.
//  2. partition-heal: the stream's link partitions mid-flight and heals;
//     the outage is booked as loss, traffic resumes, the stream terminates.
//  3. latency-spike: the link's latency spikes mid-stream; the stream
//     stalls visibly but completes with no loss at all.
//  4. herd: cfg.Sessions ReconnectClients are associated when the server
//     is killed and restarted; all of them reconnect inside the backoff
//     envelope (p99 asserted), one client's interrupted play is resumed
//     from the receiver's contiguous progress and must come out
//     byte-identical to the stored movie with zero duplicate frames, and
//     the combo ends with no leaked goroutines.
//
// It replaces the per-session loop (sole scenario in the mix, validated at
// startup); -sessions sizes the reconnect herd.

// Chaos sub-scenario tuning. The stream phases each play one catalogue
// movie at its seeded frame rate, so their wall time is cfg.Frames/cfg.FPS.
const (
	// chaosSlowProb/chaosSlowDelay/chaosReadTimeout shape the slow-disk
	// phase: ~15% of reads stall past the bound, each costing frames
	// (skips), never the sender.
	chaosSlowProb    = 0.15
	chaosSlowDelay   = 50 * time.Millisecond
	chaosReadTimeout = 20 * time.Millisecond
	// chaosPartition is the mid-stream outage; it auto-heals.
	chaosPartition = 250 * time.Millisecond
	// chaosSpikeExtra/chaosSpikeFor define the latency spike.
	chaosSpikeExtra = 60 * time.Millisecond
	chaosSpikeFor   = 300 * time.Millisecond
	// chaosWarmFrames is how many deliveries a stream phase waits for
	// before injecting its fault (capped at a quarter of the movie).
	chaosWarmFrames = 50
	// herdBackoffBase/herdBackoffMax/herdMaxAttempts tune every herd
	// member's ReconnectClient.
	herdBackoffBase = 25 * time.Millisecond
	herdBackoffMax  = 2 * time.Second
	herdMaxAttempts = 12
	herdBusyRetry   = 50 * time.Millisecond
	herdCallTimeout = 5 * time.Second
	// herdSchedSlack is the per-client scheduling allowance added to the
	// backoff envelope: the storm launches every reconnect at once, so the
	// tail measurement includes waiting for a CPU, not just waiting out
	// backoff.
	herdSchedSlack = 2 * time.Millisecond
)

// chaosAgg is the combo-level chaos outcome for the report.
type chaosAgg struct {
	slowDelivered, slowLost int
	slowInjected            int64

	partBefore, partDelivered, partLost int

	spikeDelivered int
	spikeMaxGap    time.Duration

	herdClients    int
	herdReconnects int
	herdRedials    int64
	herdP50        time.Duration
	herdP95        time.Duration
	herdP99        time.Duration
	herdEnvelope   time.Duration

	resumeFrames   int
	resumeDups     int
	resumeIdentity bool

	leakedGoroutines int
}

// chaosMovie picks a catalogue movie for a phase or herd member.
func chaosMovie(cfg loadConfig, i int) string {
	return fmt.Sprintf("cat-%03d", i%cfg.Movies)
}

// chaosAddr is the control listen address for the combo transport.
func chaosAddr(tr string) string {
	if tr == "tcp" {
		return "127.0.0.1:0"
	}
	return ""
}

// chaosDialSrv opens a facade client to srv over the combo transport.
func chaosDialSrv(srv *xmovie.Server, stack core.StackKind, tr string) (*xmovie.Client, error) {
	ccfg := xmovie.ClientConfig{Stack: stack, CallTimeout: herdCallTimeout}
	if tr == "tcp" {
		return xmovie.Dial(srv.Addr(), ccfg)
	}
	clientEnd, serverEnd := xmovie.Pipe()
	if err := srv.ServeConn(serverEnd); err != nil {
		clientEnd.Close()
		return nil, err
	}
	return xmovie.NewClientConn(clientEnd, ccfg)
}

// runChaosCombo replaces the generic per-session loop for the chaos
// scenario.
func runChaosCombo(cfg loadConfig, stack core.StackKind, tr string) *comboResult {
	res := newComboResult(stack.String(), tr)
	agg := &chaosAgg{}
	g0 := runtime.NumGoroutine()

	cenv, err := seedEnv(cfg)
	if err != nil {
		res.fail(fmt.Sprintf("seed: %v", err))
		return res
	}
	defer cenv.cleanup()
	env, sim := cenv.env, cenv.sim
	defer sim.Close()
	start := time.Now()

	chaosSlowDisk(cfg, stack, tr, env, sim, res, agg)
	chaosPartitionHeal(cfg, stack, tr, env, sim, res, agg)
	chaosLatencySpike(cfg, stack, tr, env, sim, res, agg)
	chaosHerd(cfg, stack, tr, env, sim, res, agg)

	res.wall = time.Since(start)
	res.serverStreams = env.StreamTotals.Snapshot()

	// Everything above has closed its servers and clients: every session,
	// stream, pump and bounded-read worker must unwind. Busy responders and
	// injected stalls have bounded lifetimes, so wait them out briefly.
	deadline := time.Now().Add(10 * time.Second)
	leaked := runtime.NumGoroutine() - g0
	for leaked > 8 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		leaked = runtime.NumGoroutine() - g0
	}
	if leaked < 0 {
		leaked = 0
	}
	agg.leakedGoroutines = leaked
	if leaked > 8 {
		res.addErr(fmt.Sprintf("goroutine leak: %d more than before the combo", leaked))
	}

	res.mu.Lock()
	res.chaos = agg
	res.mu.Unlock()
	return res
}

// chaosReceive starts a frame-counting receiver on a fresh SimNet path.
func chaosReceive(sim *mcam.SimNet, addr string, deliver func(mtp.Frame)) (<-chan mtp.RecvStats, *netsim.Endpoint, error) {
	end, err := sim.Listen(addr, netsim.Config{})
	if err != nil {
		return nil, nil, err
	}
	done := make(chan mtp.RecvStats, 1)
	go func() {
		st, _ := mtp.ReceiveStream(end, mtp.ReceiverConfig{}, deliver)
		done <- st
	}()
	return done, end, nil
}

// chaosSlowDisk streams one movie off a store injecting read stalls, under
// a server whose StreamReadTimeout turns each stall into skipped frames
// instead of a wedged sender.
func chaosSlowDisk(cfg loadConfig, stack core.StackKind, tr string, env *mcam.ServerEnv, sim *mcam.SimNet, res *comboResult, agg *chaosAgg) {
	faulty := chaos.NewFaultStore(env.Store, chaos.FaultConfig{
		Seed: 17, SlowProb: chaosSlowProb, SlowDelay: chaosSlowDelay,
	})
	env2 := *env
	env2.Store = faulty
	env2.StreamReadTimeout = chaosReadTimeout
	srv, err := xmovie.ListenAndServe(xmovie.ServerConfig{Addr: chaosAddr(tr), Stack: stack, Env: &env2})
	if err != nil {
		res.addErr(fmt.Sprintf("slow-disk server: %v", err))
		return
	}
	defer srv.Close()
	client, err := chaosDialSrv(srv, stack, tr)
	if err != nil {
		res.addErr(fmt.Sprintf("slow-disk dial: %v", err))
		return
	}
	defer client.Close()

	addr := fmt.Sprintf("chaos-slow-%s-%s/video", res.stack, res.transport)
	done, _, err := chaosReceive(sim, addr, nil)
	if err != nil {
		res.addErr(fmt.Sprintf("slow-disk listen: %v", err))
		return
	}
	t := time.Now()
	if _, err := client.Play(chaosMovie(cfg, 0), addr); err != nil {
		res.addErr(fmt.Sprintf("slow-disk play: %v", err))
		return
	}
	res.op("slow-play", time.Since(t))
	select {
	case st := <-done:
		agg.slowDelivered, agg.slowLost = st.Delivered, st.Lost
		agg.slowInjected = faulty.Stats().Slowed
		if st.Delivered+st.Lost != cfg.Frames {
			res.addErr(fmt.Sprintf("slow-disk accounting: delivered %d + lost %d != %d", st.Delivered, st.Lost, cfg.Frames))
		}
		if st.Lost == 0 {
			res.addErr("slow-disk: no frames skipped — the injected stalls never bit")
		}
		if st.Delivered == 0 {
			res.addErr("slow-disk: nothing delivered — the stream wedged instead of degrading")
		}
		res.done()
	case <-time.After(sessionTimeout):
		res.addErr("slow-disk: stream never terminated (wedged sender?)")
	}
}

// chaosPartitionHeal partitions a live stream's link mid-flight and lets it
// heal: the outage must be booked as loss, traffic must resume, and the
// stream must terminate.
func chaosPartitionHeal(cfg loadConfig, stack core.StackKind, tr string, env *mcam.ServerEnv, sim *mcam.SimNet, res *comboResult, agg *chaosAgg) {
	srv, err := xmovie.ListenAndServe(xmovie.ServerConfig{Addr: chaosAddr(tr), Stack: stack, Env: env})
	if err != nil {
		res.addErr(fmt.Sprintf("partition server: %v", err))
		return
	}
	defer srv.Close()
	client, err := chaosDialSrv(srv, stack, tr)
	if err != nil {
		res.addErr(fmt.Sprintf("partition dial: %v", err))
		return
	}
	defer client.Close()

	addr := fmt.Sprintf("chaos-part-%s-%s/video", res.stack, res.transport)
	var delivered atomic.Int64
	done, _, err := chaosReceive(sim, addr, func(mtp.Frame) { delivered.Add(1) })
	if err != nil {
		res.addErr(fmt.Sprintf("partition listen: %v", err))
		return
	}
	t := time.Now()
	if _, err := client.Play(chaosMovie(cfg, 1), addr); err != nil {
		res.addErr(fmt.Sprintf("partition play: %v", err))
		return
	}
	res.op("part-play", time.Since(t))
	if !chaosAwait(func() bool { return delivered.Load() >= chaosWarm(cfg) }) {
		res.addErr("partition: stream never warmed up")
		return
	}
	link, ok := sim.Link(addr)
	if !ok {
		res.addErr("partition: no link for the stream path")
		return
	}
	before := int(delivered.Load())
	link.Partition(chaosPartition) // auto-heals

	select {
	case st := <-done:
		agg.partBefore, agg.partDelivered, agg.partLost = before, st.Delivered, st.Lost
		if st.Lost == 0 {
			res.addErr("partition: cost no frames — it never bit")
		}
		if st.Delivered+st.Lost < cfg.Frames {
			res.addErr(fmt.Sprintf("partition accounting: delivered %d + lost %d < %d", st.Delivered, st.Lost, cfg.Frames))
		}
		if st.Delivered <= before {
			res.addErr(fmt.Sprintf("partition: no traffic after heal (%d delivered, %d before)", st.Delivered, before))
		}
		res.done()
	case <-time.After(sessionTimeout):
		res.addErr("partition: stream never terminated across the outage")
	}
}

// chaosLatencySpike spikes the link's latency mid-stream: the delivery
// stalls visibly (max inter-arrival gap covers the spike) but nothing is
// lost and the stream completes.
func chaosLatencySpike(cfg loadConfig, stack core.StackKind, tr string, env *mcam.ServerEnv, sim *mcam.SimNet, res *comboResult, agg *chaosAgg) {
	srv, err := xmovie.ListenAndServe(xmovie.ServerConfig{Addr: chaosAddr(tr), Stack: stack, Env: env})
	if err != nil {
		res.addErr(fmt.Sprintf("spike server: %v", err))
		return
	}
	defer srv.Close()
	client, err := chaosDialSrv(srv, stack, tr)
	if err != nil {
		res.addErr(fmt.Sprintf("spike dial: %v", err))
		return
	}
	defer client.Close()

	addr := fmt.Sprintf("chaos-spike-%s-%s/video", res.stack, res.transport)
	var delivered atomic.Int64
	// The deliver callback runs on one goroutine; reading maxGap after the
	// stats channel receive is ordered by the channel.
	var last time.Time
	var maxGap time.Duration
	done, _, err := chaosReceive(sim, addr, func(mtp.Frame) {
		now := time.Now()
		if !last.IsZero() {
			if g := now.Sub(last); g > maxGap {
				maxGap = g
			}
		}
		last = now
		delivered.Add(1)
	})
	if err != nil {
		res.addErr(fmt.Sprintf("spike listen: %v", err))
		return
	}
	t := time.Now()
	if _, err := client.Play(chaosMovie(cfg, 2), addr); err != nil {
		res.addErr(fmt.Sprintf("spike play: %v", err))
		return
	}
	res.op("spike-play", time.Since(t))
	if !chaosAwait(func() bool { return delivered.Load() >= chaosWarm(cfg) }) {
		res.addErr("spike: stream never warmed up")
		return
	}
	link, ok := sim.Link(addr)
	if !ok {
		res.addErr("spike: no link for the stream path")
		return
	}
	link.Spike(chaosSpikeExtra, chaosSpikeFor) // auto-reverts

	select {
	case st := <-done:
		agg.spikeDelivered, agg.spikeMaxGap = st.Delivered, maxGap
		if st.Lost != 0 || st.Delivered != cfg.Frames {
			res.addErr(fmt.Sprintf("spike: delivered %d, lost %d — latency alone must lose nothing (want %d/0)", st.Delivered, st.Lost, cfg.Frames))
		}
		if maxGap < chaosSpikeExtra*2/3 {
			res.addErr(fmt.Sprintf("spike: max inter-arrival gap %v — the spike never bit", maxGap))
		}
		res.done()
	case <-time.After(sessionTimeout):
		res.addErr("spike: stream never terminated")
	}
}

// chaosSeqLog collects delivered frames by sequence number for the resumed
// stream's byte-identity check.
type chaosSeqLog struct {
	mu     sync.Mutex
	frames map[uint32][]byte
	dups   int
}

func (l *chaosSeqLog) deliver(f mtp.Frame) {
	l.mu.Lock()
	if _, ok := l.frames[f.Seq]; ok {
		l.dups++
	} else {
		l.frames[f.Seq] = append([]byte(nil), f.Payload...)
	}
	l.mu.Unlock()
}

func (l *chaosSeqLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.frames)
}

// contiguous returns the first sequence number not yet delivered.
func (l *chaosSeqLog) contiguous() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for {
		if _, ok := l.frames[uint32(n)]; !ok {
			return n
		}
		n++
	}
}

// chaosHerd is the thundering-herd phase: cfg.Sessions ReconnectClients are
// associated when the server dies; after the restart the whole herd
// reconnects at once and every reconnect time must land inside the backoff
// envelope. One client's interrupted play resumes from the receiver's
// contiguous progress and is checked byte-identical with zero duplicates.
func chaosHerd(cfg loadConfig, stack core.StackKind, tr string, env *mcam.ServerEnv, sim *mcam.SimNet, res *comboResult, agg *chaosAgg) {
	newSrv := func() (*xmovie.Server, error) {
		return xmovie.ListenAndServe(xmovie.ServerConfig{
			Addr: chaosAddr(tr), Stack: stack, Env: env,
			Limits: xmovie.Limits{MaxSessions: cfg.Sessions + 16, BusyRetryAfter: herdBusyRetry},
		})
	}
	srv, err := newSrv()
	if err != nil {
		res.addErr(fmt.Sprintf("herd server: %v", err))
		return
	}
	var srvMu sync.Mutex
	cur := srv
	closeCur := func() {
		srvMu.Lock()
		s := cur
		srvMu.Unlock()
		s.Close()
	}
	defer closeCur()
	var maxAttempt atomic.Int64
	newMember := func(seed int64) (*xmovie.ReconnectClient, error) {
		return xmovie.NewReconnectClient(xmovie.ReconnectConfig{
			Dial: func() (*xmovie.Client, error) {
				srvMu.Lock()
				s := cur
				srvMu.Unlock()
				return chaosDialSrv(s, stack, tr)
			},
			BackoffBase: herdBackoffBase,
			BackoffMax:  herdBackoffMax,
			MaxAttempts: herdMaxAttempts,
			Seed:        seed,
			OnRedial: func(attempt int, _ time.Duration, _ error) {
				for {
					old := maxAttempt.Load()
					if int64(attempt) <= old || maxAttempt.CompareAndSwap(old, int64(attempt)) {
						return
					}
				}
			},
		})
	}

	// Associate the herd (bounded by the configured concurrency) plus the
	// one client whose play will be interrupted and resumed.
	herd := make([]*xmovie.ReconnectClient, cfg.Sessions)
	agg.herdClients = cfg.Sessions
	sem := make(chan struct{}, cfg.Concurrent)
	var wg sync.WaitGroup
	for i := range herd {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			t := time.Now()
			rc, err := newMember(int64(i + 1))
			if err != nil {
				res.addErr(fmt.Sprintf("herd %d: %v", i, err))
				return
			}
			if _, _, err := rc.Select(chaosMovie(cfg, i)); err != nil {
				res.addErr(fmt.Sprintf("herd %d select: %v", i, err))
				rc.Close()
				return
			}
			res.op("dial", time.Since(t))
			herd[i] = rc
		}(i)
	}
	wg.Wait()
	defer func() {
		for _, rc := range herd {
			if rc != nil {
				rc.Close()
			}
		}
	}()

	resumeMovie := chaosMovie(cfg, 3)
	rc0, err := newMember(int64(cfg.Sessions + 1))
	if err != nil {
		res.addErr(fmt.Sprintf("resume client: %v", err))
		return
	}
	defer rc0.Close()
	if _, _, err := rc0.Select(resumeMovie); err != nil {
		res.addErr(fmt.Sprintf("resume select: %v", err))
		return
	}
	resumeAddr := fmt.Sprintf("chaos-herd-%s-%s/video", res.stack, res.transport)
	end, err := sim.Listen(resumeAddr, netsim.Config{})
	if err != nil {
		res.addErr(fmt.Sprintf("resume listen: %v", err))
		return
	}
	log := &chaosSeqLog{frames: make(map[uint32][]byte)}
	recv := func() chan mtp.RecvStats {
		done := make(chan mtp.RecvStats, 1)
		go func() {
			st, _ := mtp.ReceiveStream(end, mtp.ReceiverConfig{}, log.deliver)
			done <- st
		}()
		return done
	}
	done := recv()
	if _, err := rc0.Play(resumeMovie, resumeAddr); err != nil {
		res.addErr(fmt.Sprintf("resume play: %v", err))
		return
	}
	if !chaosAwait(func() bool { return log.count() >= int(chaosWarm(cfg)) }) {
		res.addErr("herd: resume stream never warmed up")
		return
	}

	// The crash: kill the server with the whole herd associated and the
	// stream in flight, then bring a fresh instance up on the same state.
	closeCur()
	select {
	case <-done: // the dying server terminates the stream on the wire
	case <-time.After(sessionTimeout):
		res.addErr("herd: interrupted stream never terminated after the kill")
		return
	}
	acked := log.contiguous()
	if acked >= int64(cfg.Frames) {
		res.addErr("herd: stream finished before the kill; nothing was interrupted")
	}
	// Drain the dead stream's trailing EOS markers so the resumed
	// receiver cannot mistake them for its own termination (stream IDs
	// restart at 1 on a fresh association).
	time.Sleep(50 * time.Millisecond)
	for {
		if _, ok := end.TryRecv(); !ok {
			break
		}
	}

	srv2, err := newSrv()
	if err != nil {
		res.addErr(fmt.Sprintf("herd restart: %v", err))
		return
	}
	srvMu.Lock()
	cur = srv2
	srvMu.Unlock()

	// The stampede: every member finds its association dead on the next
	// call and redials — all at once.
	restartAt := time.Now()
	var dmu sync.Mutex
	durs := make([]time.Duration, 0, len(herd))
	var wg2 sync.WaitGroup
	for i, rc := range herd {
		if rc == nil {
			continue
		}
		wg2.Add(1)
		go func(i int, rc *xmovie.ReconnectClient) {
			defer wg2.Done()
			if _, err := rc.List(); err != nil {
				res.addErr(fmt.Sprintf("herd %d reconnect: %v", i, err))
				return
			}
			d := time.Since(restartAt)
			res.op("reconnect", d)
			dmu.Lock()
			durs = append(durs, d)
			dmu.Unlock()
			res.done()
		}(i, rc)
	}
	wg2.Wait()
	agg.herdReconnects = len(durs)
	agg.herdP50 = percentile(durs, 50)
	agg.herdP95 = percentile(durs, 95)
	agg.herdP99 = percentile(durs, 99)
	for _, rc := range herd {
		if rc != nil {
			agg.herdRedials += rc.Stats().Redials
		}
	}
	if agg.herdReconnects < agg.herdClients {
		res.addErr(fmt.Sprintf("herd: only %d/%d clients reconnected", agg.herdReconnects, agg.herdClients))
	}
	// The envelope: the cumulative backoff for the deepest attempt any
	// member needed (jitter only shortens waits), plus a scheduling
	// allowance for the all-at-once storm.
	envl := time.Second + time.Duration(agg.herdClients)*herdSchedSlack
	for a := 1; a <= int(maxAttempt.Load()); a++ {
		b := herdBackoffBase * (1 << (a - 1))
		if b > herdBackoffMax {
			b = herdBackoffMax
		}
		envl += b
	}
	agg.herdEnvelope = envl
	if agg.herdP99 > envl {
		res.addErr(fmt.Sprintf("herd: reconnect p99 %v outside the backoff envelope %v", agg.herdP99, envl))
	}

	// The resume: restart the interrupted play at the receiver's
	// contiguous progress; the complete delivered sequence must equal the
	// stored movie exactly, with zero duplicate frames.
	done = recv()
	if _, err := rc0.ResumeLastPlay(acked); err != nil {
		res.addErr(fmt.Sprintf("herd resume: %v", err))
		return
	}
	select {
	case <-done:
	case <-time.After(sessionTimeout):
		res.addErr("herd: resumed stream never terminated")
		return
	}
	if st := rc0.Stats(); st.Resumes != 1 {
		res.addErr(fmt.Sprintf("herd: resume client stats %+v, want exactly one resume", st))
	}
	truth := chaosGroundTruth(env, res, resumeMovie)
	log.mu.Lock()
	agg.resumeFrames = len(log.frames)
	agg.resumeDups = log.dups
	agg.resumeIdentity = truth != nil && len(log.frames) == len(truth)
	if agg.resumeIdentity {
		for i, want := range truth {
			if got := log.frames[uint32(i)]; string(got) != string(want) {
				agg.resumeIdentity = false
				break
			}
		}
	}
	log.mu.Unlock()
	if agg.resumeDups > 0 {
		res.addErr(fmt.Sprintf("herd: %d duplicate frames across the resume", agg.resumeDups))
	}
	if !agg.resumeIdentity {
		res.addErr(fmt.Sprintf("herd: resumed stream not byte-identical (%d/%d frames)", agg.resumeFrames, cfg.Frames))
	}
	st := srv2.Observe().Sessions
	if st.Rejected > 0 {
		res.addErr(fmt.Sprintf("herd: restarted server rejected %d connections", st.Rejected))
	}
	res.peak = st.Peak
}

// chaosWarm is the delivery count a stream phase waits for before injecting
// its fault.
func chaosWarm(cfg loadConfig) int64 {
	w := int64(chaosWarmFrames)
	if q := int64(cfg.Frames / 4); q < w {
		w = q
	}
	if w < 1 {
		w = 1
	}
	return w
}

// chaosAwait polls cond until it holds or the session timeout elapses.
func chaosAwait(cond func() bool) bool {
	deadline := time.Now().Add(sessionTimeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// chaosGroundTruth materializes the stored movie for the byte-identity
// check. nil (with an error recorded) if that fails.
func chaosGroundTruth(env *mcam.ServerEnv, res *comboResult, name string) [][]byte {
	m, err := env.Store.Get(name)
	if err != nil {
		res.addErr(fmt.Sprintf("ground truth: %v", err))
		return nil
	}
	frames, err := moviedb.Materialize(m.Content)
	if err != nil {
		res.addErr(fmt.Sprintf("ground truth: %v", err))
		return nil
	}
	return frames
}
