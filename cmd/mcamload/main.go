// Command mcamload is the MCAM load-generation harness: it drives N
// concurrent client sessions through mixed browse/order/play scenarios
// against an in-process server, over both control stacks (generated and
// hand-coded) and both transports (in-memory pipe and TPKT over TCP), and
// reports sessions/sec, per-operation latency percentiles, and error
// counts. The disk scenario moves the catalogue onto the durable segment
// store and measures cold-vs-cached stream throughput through its chunk
// cache.
//
// With -json the aggregate result is written as BENCH_mcamload.json in the
// same shape cmd/mcambench emits, so CI archives the scaling trajectory
// alongside the hot-path benchmarks.
//
// Profiles:
//
//	-profile smoke  1000 sessions at 1000-way concurrency over the
//	                in-memory pipe on both stacks — the "thousands of
//	                concurrent sessions" acceptance gate.
//	-profile soak   256 sessions at 64-way concurrency over every
//	                stack×transport combination — sized to finish well
//	                under 30s even with -race instrumentation (the CI
//	                load-soak job).
//
// Individual flags override profile values.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"xmovie/internal/core"
)

func main() {
	var (
		profile    = flag.String("profile", "", "preset: smoke or soak (flags override)")
		sessions   = flag.Int("sessions", 256, "total sessions per stack×transport combination")
		concurrent = flag.Int("concurrent", 64, "maximum sessions in flight at once")
		stacks     = flag.String("stacks", "generated,handcoded", "comma list: generated,handcoded")
		transports = flag.String("transports", "pipe", "comma list: pipe,tcp")
		scenarios  = flag.String("scenarios", "mixed", "comma list cycled over sessions: browse,order,play,stream,disk,mixed,broadcast,chaos,qos,scale")
		movies     = flag.Int("movies", 32, "seeded catalogue size")
		frames     = flag.Int("frames", 250, "frames per seeded movie")
		fps        = flag.Int("fps", 25, "seeded movies' frame rate (pacing of every play)")
		outName    = flag.String("out", "mcamload", "basename of the -json report (BENCH_<out>.json)")
		maxTime    = flag.Duration("maxtime", 0, "abort combos still running past this wall-clock budget (0 = none)")
		holdAll    = flag.Bool("hold", false, "barrier: all sessions connect before any proceeds (needs concurrent >= sessions)")
		jsonOut    = flag.Bool("json", false, "also write BENCH_mcamload.json")
		outDir     = flag.String("outdir", "bench-out", "directory for -json output")
	)
	flag.Parse()

	// Profiles are defaults, not overrides: apply them only to flags the
	// user did not set explicitly.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	switch *profile {
	case "smoke":
		if !set["sessions"] {
			*sessions = 1000
		}
		if !set["concurrent"] {
			*concurrent = 1000
		}
		if !set["transports"] {
			*transports = "pipe"
		}
		if !set["maxtime"] {
			*maxTime = 3 * time.Minute
		}
		if !set["hold"] {
			*holdAll = true
		}
	case "soak":
		if !set["sessions"] {
			*sessions = 256
		}
		if !set["concurrent"] {
			*concurrent = 64
		}
		if !set["transports"] {
			*transports = "pipe,tcp"
		}
		if !set["maxtime"] {
			*maxTime = 30 * time.Second
		}
	case "":
	default:
		fmt.Fprintf(os.Stderr, "mcamload: unknown profile %q\n", *profile)
		os.Exit(2)
	}

	cfg := loadConfig{
		Sessions:   *sessions,
		Concurrent: *concurrent,
		Movies:     *movies,
		Frames:     *frames,
		FPS:        *fps,
		Hold:       *holdAll,
	}
	for _, s := range strings.Split(*stacks, ",") {
		switch strings.TrimSpace(s) {
		case "generated":
			cfg.Stacks = append(cfg.Stacks, core.StackGenerated)
		case "handcoded":
			cfg.Stacks = append(cfg.Stacks, core.StackHandcoded)
		case "":
		default:
			fmt.Fprintf(os.Stderr, "mcamload: unknown stack %q\n", s)
			os.Exit(2)
		}
	}
	for _, tr := range strings.Split(*transports, ",") {
		switch tr = strings.TrimSpace(tr); tr {
		case "pipe", "tcp":
			cfg.Transports = append(cfg.Transports, tr)
		case "":
		default:
			fmt.Fprintf(os.Stderr, "mcamload: unknown transport %q\n", tr)
			os.Exit(2)
		}
	}
	for _, sc := range strings.Split(*scenarios, ",") {
		switch sc = strings.TrimSpace(sc); sc {
		case scenarioBrowse, scenarioOrder, scenarioPlay, scenarioStream, scenarioDisk, scenarioMixed, scenarioBroadcast, scenarioChaos, scenarioQoS, scenarioScale:
			cfg.Scenarios = append(cfg.Scenarios, sc)
		case "":
		default:
			fmt.Fprintf(os.Stderr, "mcamload: unknown scenario %q\n", sc)
			os.Exit(2)
		}
	}
	if len(cfg.Stacks) == 0 || len(cfg.Transports) == 0 || len(cfg.Scenarios) == 0 {
		fmt.Fprintln(os.Stderr, "mcamload: need at least one stack, transport and scenario")
		os.Exit(2)
	}
	for _, sc := range cfg.Scenarios {
		if sc == scenarioScale {
			if len(cfg.Scenarios) != 1 {
				fmt.Fprintln(os.Stderr, "mcamload: the scale scenario must be the sole scenario in the mix")
				os.Exit(2)
			}
			// The full 100k ladder is opt-in: without MCAMLOAD_SCALE_FULL=1
			// an unset -sessions stays at the CI-sized 10k top tier.
			if !set["sessions"] {
				if scaleFull() {
					cfg.Sessions = 100000
				} else {
					cfg.Sessions = 10000
				}
			}
			if !set["concurrent"] {
				cfg.Concurrent = 64
			}
		}
		if sc == scenarioChaos && len(cfg.Scenarios) != 1 {
			fmt.Fprintln(os.Stderr, "mcamload: the chaos scenario must be the sole scenario in the mix")
			os.Exit(2)
		}
		if sc == scenarioQoS {
			if len(cfg.Scenarios) != 1 {
				fmt.Fprintln(os.Stderr, "mcamload: the qos scenario must be the sole scenario in the mix")
				os.Exit(2)
			}
			for _, tr := range cfg.Transports {
				if tr != "pipe" {
					fmt.Fprintln(os.Stderr, "mcamload: the qos scenario runs over the pipe transport only (tenants are assigned at admission)")
					os.Exit(2)
				}
			}
		}
		if sc != scenarioBroadcast {
			continue
		}
		if len(cfg.Scenarios) != 1 {
			fmt.Fprintln(os.Stderr, "mcamload: the broadcast scenario must be the sole scenario in the mix")
			os.Exit(2)
		}
		if cfg.Concurrent < cfg.Sessions {
			fmt.Fprintf(os.Stderr, "mcamload: broadcast needs -concurrent (%d) >= -sessions (%d): every viewer stream stays open until the seal\n",
				cfg.Concurrent, cfg.Sessions)
			os.Exit(2)
		}
	}
	if cfg.Hold && cfg.Concurrent < cfg.Sessions {
		fmt.Fprintf(os.Stderr, "mcamload: -hold needs -concurrent (%d) >= -sessions (%d): every session must be open at once\n",
			cfg.Concurrent, cfg.Sessions)
		os.Exit(2)
	}
	var deadline time.Time
	if *maxTime > 0 {
		deadline = time.Now().Add(*maxTime)
	}

	report := runAll(cfg, deadline, os.Stdout)
	fmt.Print(report.Table())

	if *jsonOut {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "mcamload: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(report.BenchJSON(*outName), "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcamload: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		path := filepath.Join(*outDir, "BENCH_"+*outName+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mcamload: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if !report.OK() {
		os.Exit(1)
	}
}
