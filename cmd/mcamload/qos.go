package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"xmovie/internal/core"
	"xmovie/internal/mcam"
	"xmovie/internal/moviedb"
	"xmovie/internal/mtp"
	"xmovie/internal/netsim"
	"xmovie/internal/qos"
	"xmovie/internal/spa"
	"xmovie/internal/transport"
)

// scenarioQoS is the multi-tenant QoS shape: two tenant classes — paying
// "gold" (priority 10) and anonymous "free" (priority 0) — contend past the
// server's MaxSessions bound and past their per-class stream-bandwidth
// caps, asserting priority admission (every gold connection preempts a free
// session once the server is full), per-class throughput isolation (each
// class lands within ±10% of its own cap), and a /metrics scrape exposing
// the session/stream/cache/tenant counter families. Sole scenario in the
// mix, pipe transport only (tenants are assigned at admission); phase
// sizing is fixed rather than taken from -sessions. See runQoSCombo.
const scenarioQoS = "qos"

const (
	// Phase 1 (admission): the server bound and how many free sessions
	// fill it before the gold arrivals must preempt their way in.
	qosMaxSessions = 16
	qosGoldDials   = 8
	// Phase 2 (isolation): streams per class over the flat-out movie.
	qosStreamsPerClass = 2
	qosFrames          = 48
	qosFrameSize       = 8 << 10
	// Per-class aggregate bandwidth caps (bytes/second) and token-bucket
	// burst. The movie is unpaced (FrameRate 0), so the caps are the only
	// pacing: per-class throughput must land within qosTolerance of them.
	qosGoldBps   = 512 << 10
	qosFreeBps   = 256 << 10
	qosBurst     = 8 << 10
	qosTolerance = 0.10
)

// qosMovie is the unpaced catalogue entry both classes stream in phase 2.
const qosMovie = "qos-flat"

// qosAgg is the QoS scenario's outcome for the report.
type qosAgg struct {
	goldAdmitted    int64
	goldPreemptions int64
	freePreempted   int64
	peak            int64

	goldBytes, freeBytes int64
	goldRate, freeRate   float64 // measured bytes/second per class
	goldWaits, freeWaits int64   // throttle reservations that waited

	metricFamilies int
	scrapeOK       bool
}

// qosPolicy is the two-class tenant policy both the server and the
// assertions are built around.
func qosPolicy() qos.Policy {
	return qos.Policy{
		Tenants: map[string]qos.Class{
			"gold": {Name: "gold", Priority: 10, StreamBandwidth: qosGoldBps, Burst: qosBurst},
			"free": {Name: "free", Priority: 0, StreamBandwidth: qosFreeBps, Burst: qosBurst},
		},
	}
}

// runQoSCombo drives the three QoS phases against one fresh server.
func runQoSCombo(cfg loadConfig, stack core.StackKind, tr string) *comboResult {
	res := newComboResult(stack.String(), tr)
	agg := &qosAgg{}
	res.qos = agg

	store := moviedb.NewShardedStore(0)
	m := moviedb.SynthesizeLazy(moviedb.SynthConfig{
		Name: qosMovie, Frames: qosFrames, FrameSize: qosFrameSize,
	})
	// FrameRate 0: the movie streams unpaced, so the tenant caps are the
	// only pacing and the measured rates are the throttle's, not the
	// pacing clock's.
	m.FrameRate = 0
	if err := store.Create(m); err != nil {
		res.fail(fmt.Sprintf("seed: %v", err))
		return res
	}
	sim := mcam.NewSimNet()
	defer sim.Close()
	env := &mcam.ServerEnv{Store: store, Dialer: sim, StreamTotals: &spa.Totals{}}
	srv, err := core.NewServer(core.ServerConfig{
		Stack: stack, Env: env,
		MetricsAddr: "127.0.0.1:0",
		Limits:      core.Limits{MaxSessions: qosMaxSessions, QoS: qosPolicy()},
	})
	if err != nil {
		res.fail(fmt.Sprintf("server: %v", err))
		return res
	}
	defer srv.Close()

	start := time.Now()
	qosAdmissionPhase(srv, res, agg)
	if len(res.errs) == 0 {
		qosIsolationPhase(srv, sim, stack, res, agg)
	}
	if len(res.errs) == 0 {
		qosMetricsPhase(srv, res, agg)
	}
	res.wall = time.Since(start)
	res.serverStreams = env.StreamTotals.Snapshot()
	st := srv.Observe().Sessions
	res.peak = st.Peak
	return res
}

// qosWait polls cond for up to timeout.
func qosWait(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
	return true
}

// qosAdmissionPhase fills the server with free sessions, then dials gold
// connections into the full server: every one must be admitted by
// preempting a free session, never refused.
func qosAdmissionPhase(srv *core.Server, res *comboResult, agg *qosAgg) {
	var held []transport.Conn
	defer func() {
		for _, c := range held {
			c.Close()
		}
	}()
	for i := 0; i < qosMaxSessions; i++ {
		cli, srvEnd := transport.Pipe(0)
		if err := srv.ServeConnFor(srvEnd, "free"); err != nil {
			cli.Close()
			res.addErr(fmt.Sprintf("admission: free session %d: %v", i, err))
			return
		}
		held = append(held, cli)
		res.done()
	}
	for i := 0; i < qosGoldDials; i++ {
		cli, srvEnd := transport.Pipe(0)
		if err := srv.ServeConnFor(srvEnd, "gold"); err != nil {
			cli.Close()
			res.addErr(fmt.Sprintf("admission: gold session %d refused at full server: %v", i, err))
			return
		}
		held = append(held, cli)
		res.done()
	}
	ok := qosWait(sessionTimeout, func() bool {
		o := srv.Observe()
		return o.Tenants["free"].Active == qosMaxSessions-qosGoldDials &&
			o.Tenants["gold"].Active == qosGoldDials
	})
	o := srv.Observe()
	agg.goldAdmitted = o.Tenants["gold"].Admitted
	agg.goldPreemptions = o.Tenants["gold"].Preemptions
	agg.freePreempted = o.Tenants["free"].Preempted
	agg.peak = o.Sessions.Peak
	if !ok {
		res.addErr(fmt.Sprintf("admission: teardown incomplete: free=%d gold=%d active",
			o.Tenants["free"].Active, o.Tenants["gold"].Active))
		return
	}
	if agg.goldAdmitted != qosGoldDials || agg.goldPreemptions != qosGoldDials {
		res.addErr(fmt.Sprintf("admission: gold admitted=%d preemptions=%d, want %d/%d",
			agg.goldAdmitted, agg.goldPreemptions, qosGoldDials, qosGoldDials))
	}
	if agg.freePreempted != qosGoldDials {
		res.addErr(fmt.Sprintf("admission: free preempted=%d, want %d", agg.freePreempted, qosGoldDials))
	}
	if agg.peak > qosMaxSessions {
		res.addErr(fmt.Sprintf("admission: peak %d exceeds MaxSessions %d", agg.peak, qosMaxSessions))
	}
	for _, c := range held {
		c.Close()
	}
	held = nil
	if !qosWait(sessionTimeout, func() bool { return srv.Observe().Sessions.Active == 0 }) {
		res.addErr("admission: sessions did not unwind")
	}
}

// qosIsolationPhase streams the unpaced movie concurrently from both
// classes (qosStreamsPerClass sessions each, sharing their class's
// limiter) and asserts each class's aggregate throughput lands within
// qosTolerance of its own cap — neither starved by the other nor stealing
// past it.
func qosIsolationPhase(srv *core.Server, sim *mcam.SimNet, stack core.StackKind, res *comboResult, agg *qosAgg) {
	type classOut struct {
		bytes   int64
		elapsed time.Duration
	}
	runClass := func(tenant string, out *classOut) error {
		var wg sync.WaitGroup
		errs := make([]error, qosStreamsPerClass)
		bytes := make([]int64, qosStreamsPerClass)
		t0 := time.Now()
		for k := 0; k < qosStreamsPerClass; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				errs[k] = func() error {
					cliEnd, srvEnd := transport.Pipe(0)
					if err := srv.ServeConnFor(srvEnd, tenant); err != nil {
						cliEnd.Close()
						return fmt.Errorf("serve: %w", err)
					}
					client, err := core.NewClientConn(cliEnd, core.ClientConfig{
						Stack: stack, CallTimeout: sessionTimeout,
					})
					if err != nil {
						return fmt.Errorf("client: %w", err)
					}
					defer client.Close()
					addr := fmt.Sprintf("qos/%s-%d/video", tenant, k)
					end, err := sim.Listen(addr, netsim.Config{})
					if err != nil {
						return err
					}
					done := make(chan mtp.RecvStats, 1)
					go func() {
						st, _ := mtp.ReceiveStream(end, mtp.ReceiverConfig{}, nil)
						done <- st
					}()
					resp, err := client.Call(&mcam.Request{Op: mcam.OpPlay, Movie: qosMovie, StreamAddr: addr})
					if err != nil {
						return fmt.Errorf("play: %w", err)
					}
					if !resp.OK() {
						return fmt.Errorf("play: %s (%s)", resp.Status, resp.Diagnostic)
					}
					select {
					case st := <-done:
						if st.Delivered != qosFrames {
							return fmt.Errorf("delivered %d/%d frames", st.Delivered, qosFrames)
						}
						bytes[k] = st.Bytes
					case <-time.After(sessionTimeout):
						return fmt.Errorf("capped stream did not finish")
					}
					res.done()
					return nil
				}()
			}(k)
		}
		wg.Wait()
		out.elapsed = time.Since(t0)
		for k, err := range errs {
			if err != nil {
				return fmt.Errorf("%s stream %d: %w", tenant, k, err)
			}
			out.bytes += bytes[k]
		}
		return nil
	}

	// Both classes stream at once: isolation means each converges on its
	// own cap while contending for the same server.
	var gold, free classOut
	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	for _, cl := range []struct {
		tenant string
		out    *classOut
	}{{"gold", &gold}, {"free", &free}} {
		wg.Add(1)
		go func(tenant string, out *classOut) {
			defer wg.Done()
			if err := runClass(tenant, out); err != nil {
				errCh <- err
			}
		}(cl.tenant, cl.out)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		res.addErr(fmt.Sprintf("isolation: %v", err))
	}
	if len(res.errs) > 0 {
		return
	}

	agg.goldBytes, agg.freeBytes = gold.bytes, free.bytes
	agg.goldRate = float64(gold.bytes) / gold.elapsed.Seconds()
	agg.freeRate = float64(free.bytes) / free.elapsed.Seconds()
	o := srv.Observe()
	agg.goldWaits = o.Tenants["gold"].Throttle.Waits
	agg.freeWaits = o.Tenants["free"].Throttle.Waits
	check := func(class string, rate float64, cap int64) {
		lo, hi := float64(cap)*(1-qosTolerance), float64(cap)*(1+qosTolerance)
		if rate < lo || rate > hi {
			res.addErr(fmt.Sprintf("isolation: %s throughput %.0f B/s outside ±%.0f%% of cap %d",
				class, rate, qosTolerance*100, cap))
		}
	}
	check("gold", agg.goldRate, qosGoldBps)
	check("free", agg.freeRate, qosFreeBps)
	if agg.goldWaits == 0 || agg.freeWaits == 0 {
		res.addErr(fmt.Sprintf("isolation: caps imposed no waits (gold=%d free=%d)",
			agg.goldWaits, agg.freeWaits))
	}
}

// qosMetricsPhase scrapes the server's /metrics endpoint and asserts the
// Prometheus text contract: every exported family present with HELP and
// TYPE, and the tenant counters reflecting the first two phases.
func qosMetricsPhase(srv *core.Server, res *comboResult, agg *qosAgg) {
	resp, err := http.Get("http://" + srv.MetricsAddr() + "/metrics")
	if err != nil {
		res.addErr(fmt.Sprintf("metrics: %v", err))
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		res.addErr(fmt.Sprintf("metrics: %v", err))
		return
	}
	text := string(body)
	names := core.MetricNames()
	for _, name := range names {
		if !strings.Contains(text, "# HELP "+name+" ") || !strings.Contains(text, "# TYPE "+name+" ") {
			res.addErr(fmt.Sprintf("metrics: family %s missing from scrape", name))
		}
	}
	for _, want := range []string{
		fmt.Sprintf(`xmovie_tenant_sessions_admitted_total{tenant="gold"} %d`,
			qosGoldDials+qosStreamsPerClass),
		fmt.Sprintf(`xmovie_tenant_sessions_preempted_total{tenant="free"} %d`, qosGoldDials),
		fmt.Sprintf(`xmovie_tenant_throttle_bytes_total{tenant="gold"} %d`,
			qosStreamsPerClass*qosFrames*qosFrameSize),
	} {
		if !strings.Contains(text, want) {
			res.addErr(fmt.Sprintf("metrics: scrape missing %q", want))
		}
	}
	agg.metricFamilies = len(names)
	agg.scrapeOK = len(res.errs) == 0
}
