package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xmovie/internal/core"
	"xmovie/internal/mcam"
	"xmovie/internal/moviedb"
	"xmovie/internal/mtp"
	"xmovie/internal/netsim"
)

// The broadcast scenario: one recorder keeps a single movie live through a
// persistent OpRecord session while every other session is a viewer of the
// same movie — the massive-fan-out shape the readable-while-appendable
// contract exists for. Each appended frame is encoded once and fanned out
// to all viewers from the movie's live window; late joiners (the second
// wave) replay history from the store and hand off to the live tail.
//
// Measured: aggregate fan-out throughput (frames delivered across all
// viewers per second of broadcast) and live-edge lag — the time from a
// frame being published by the recorder to its delivery at a viewer,
// sampled only for frames that were published after the viewer joined
// (history replay is not lag). One late-wave viewer also byte-compares its
// full delivered sequence against a post-seal replay of the store, proving
// the history→live handoff is identical to the durable recording.

// broadcastMovie is the one live movie every broadcast session shares.
const broadcastMovie = "onair"

// broadcastRecID is the recorder's client-chosen persistent session id.
const broadcastRecID = 1

// broadcastBatch is the number of frames captured per OpRecord call.
const broadcastBatch = 5

// broadcastCadence paces the recorder's batches: a live feed produces
// frames on a clock, it does not blast them.
const broadcastCadence = 2 * time.Millisecond

// broadcastAgg is the combo-level broadcast outcome for the report.
type broadcastAgg struct {
	viewers   int
	late      int
	published int64
	delivered int64
	wall      time.Duration
	lagP50    time.Duration
	lagP95    time.Duration
	lagP99    time.Duration
	lagN      int
	identity  bool
}

// fanoutPerSec is the aggregate delivery rate: frames handed to viewer
// callbacks per second of broadcast wall time.
func (b *broadcastAgg) fanoutPerSec() float64 {
	if b.wall <= 0 {
		return 0
	}
	return float64(b.delivered) / b.wall.Seconds()
}

// viewerOutcome is one viewer's session result.
type viewerOutcome struct {
	joinLen   int64
	delivered int
	// arrivals holds (seq, lag-at-arrival) for every delivered frame; the
	// live-edge samples (seq >= joinLen) are filtered out after the fact
	// because frames can arrive before the OpPlay response carries joinLen.
	arrivals []arrival
	frames   [][]byte // identity viewer only
}

type arrival struct {
	seq int64
	lag time.Duration
}

// runBroadcastCombo replaces the generic per-session loop for the
// broadcast scenario: cfg.Sessions viewers in two join waves around one
// recorder, all against a single live movie. Every blocking step is
// bounded by sessionTimeout, so the combo needs no deadline plumbing; it
// requires Concurrent >= Sessions (validated at startup) because every
// viewer's stream stays open until the broadcast seals.
func runBroadcastCombo(cfg loadConfig, stack core.StackKind, tr string) *comboResult {
	res := newComboResult(stack.String(), tr)
	cenv, err := seedEnv(cfg)
	if err != nil {
		res.fail(fmt.Sprintf("seed: %v", err))
		return res
	}
	defer cenv.cleanup()
	env, sim := cenv.env, cenv.sim
	defer sim.Close()
	addr := ""
	if tr == "tcp" {
		addr = "127.0.0.1:0"
	}
	srv, err := core.NewServer(core.ServerConfig{Addr: addr, Stack: stack, Env: env})
	if err != nil {
		res.fail(fmt.Sprintf("server: %v", err))
		return res
	}
	defer srv.Close()

	total := cfg.Frames
	// pub[i] is the nanosecond timestamp (relative to start) at which the
	// recorder published frame i, stamped just before the appending call.
	pub := make([]atomic.Int64, total)
	start := time.Now()

	wave1 := cfg.Sessions - cfg.Sessions/2
	// A viewer has "joined" once its OpPlay returned. The recorder gates
	// on wave1Joined before the main publish run (so the measured fan-out
	// is to viewers that are actually on air, not a dial storm) and on
	// allJoined before sealing (so the last late joiner still finds the
	// movie live).
	var allJoined, wave1Joined sync.WaitGroup
	allJoined.Add(cfg.Sessions)
	wave1Joined.Add(wave1)

	outcomes := make([]*viewerOutcome, cfg.Sessions)
	identityIdx := wave1 // first late joiner proves handoff byte-identity
	if cfg.Sessions == 1 {
		identityIdx = 0
	}
	sem := make(chan struct{}, cfg.Concurrent)
	var viewerWG sync.WaitGroup
	launch := func(i int) {
		sem <- struct{}{}
		viewerWG.Add(1)
		go func() {
			defer viewerWG.Done()
			defer func() { <-sem }()
			onJoin := func() {
				allJoined.Done()
				if i < wave1 {
					wave1Joined.Done()
				}
			}
			out, err := runBroadcastViewer(srv, sim, stack, tr, res, i, i == identityIdx, start, pub, onJoin)
			if err != nil {
				res.addErr(fmt.Sprintf("viewer %d: %v", i, err))
				return
			}
			outcomes[i] = out
			res.done()
		}()
	}

	// The recorder seeds a little history so even first-wave viewers open a
	// movie that already exists and exercise the replay→live handoff.
	recClient, err := dial(srv, stack, tr)
	if err != nil {
		res.fail(fmt.Sprintf("recorder dial: %v", err))
		return res
	}
	defer recClient.Close()
	published := 0
	record := func(count int) error {
		for j := published; j < published+count; j++ {
			pub[j].Store(int64(time.Since(start)))
		}
		t := time.Now()
		resp, err := recClient.Call(&mcam.Request{
			Op: mcam.OpRecord, Movie: broadcastMovie, Device: "cam1",
			StreamID: broadcastRecID, Count: int64(count),
		})
		if err != nil {
			return fmt.Errorf("record: %w", err)
		}
		if !resp.OK() {
			return fmt.Errorf("record: %s (%s)", resp.Status, resp.Diagnostic)
		}
		res.op("record", time.Since(t))
		published += count
		if resp.Length != int64(published) {
			return fmt.Errorf("record: movie length %d after %d published", resp.Length, published)
		}
		return nil
	}
	batchAt := func(n int) int {
		if rest := total - n; rest < broadcastBatch {
			return rest
		}
		return broadcastBatch
	}

	if err := record(batchAt(0)); err != nil {
		res.fail(err.Error())
		return res
	}
	for i := 0; i < wave1; i++ {
		launch(i)
	}
	// The broadcast only counts once every first-wave viewer is on air:
	// frames published from here on are live fan-out to all of them, and
	// their publish→deliver lag is not polluted by the dial storm.
	if !waitGroup(&wave1Joined) {
		res.addErr("first wave did not finish joining before the timeout")
	}
	waitJoined := make(chan struct{})
	go func() { allJoined.Wait(); close(waitJoined) }()

	wave2Launched := false
	for published < total {
		if err := record(batchAt(published)); err != nil {
			res.fail(err.Error())
			return res
		}
		if !wave2Launched && published >= total/2 {
			wave2Launched = true
			for i := wave1; i < cfg.Sessions; i++ {
				launch(i) // late wave joins mid-broadcast
			}
		}
		time.Sleep(broadcastCadence)
	}
	if !wave2Launched {
		for i := wave1; i < cfg.Sessions; i++ {
			launch(i)
		}
	}
	// Hold the live edge open until every viewer has joined, so the last
	// joiner still finds a live movie, then seal.
	select {
	case <-waitJoined:
	case <-time.After(sessionTimeout):
		res.addErr(fmt.Sprintf("only %d sessions joined before seal", cfg.Sessions))
	}
	t := time.Now()
	resp, err := recClient.Call(&mcam.Request{Op: mcam.OpStop, StreamID: broadcastRecID})
	if err != nil || !resp.OK() {
		res.fail(fmt.Sprintf("seal: %+v, %v", resp, err))
		return res
	}
	res.op("seal", time.Since(t))
	if resp.Position != int64(total) {
		res.addErr(fmt.Sprintf("sealed at %d frames, published %d", resp.Position, total))
	}

	viewerWG.Wait()
	wall := time.Since(start)

	agg := &broadcastAgg{
		viewers:   cfg.Sessions,
		late:      cfg.Sessions - wave1,
		published: int64(total),
		wall:      wall,
		identity:  true,
	}
	truth := broadcastGroundTruth(env, res)
	var lags []time.Duration
	for i, out := range outcomes {
		if out == nil {
			continue
		}
		agg.delivered += int64(out.delivered)
		if out.delivered != total {
			res.addErr(fmt.Sprintf("viewer %d delivered %d/%d frames", i, out.delivered, total))
		}
		for _, a := range out.arrivals {
			if a.seq < out.joinLen {
				continue // history replay, not live lag
			}
			lags = append(lags, a.lag)
		}
		if out.frames != nil && truth != nil {
			if !framesEqual(out.frames, truth) {
				agg.identity = false
				res.addErr(fmt.Sprintf("viewer %d: delivered sequence differs from the sealed recording", i))
			}
		}
	}
	agg.lagN = len(lags)
	agg.lagP50 = percentile(lags, 50)
	agg.lagP95 = percentile(lags, 95)
	agg.lagP99 = percentile(lags, 99)
	res.mu.Lock()
	res.broadcast = agg
	res.mu.Unlock()
	res.wall = wall
	res.serverStreams = env.StreamTotals.Snapshot()
	st := srv.Observe().Sessions
	if st.Rejected > 0 {
		res.addErr(fmt.Sprintf("server rejected %d connections", st.Rejected))
	}
	res.peak = st.Peak
	return res
}

// runBroadcastViewer is one viewer session: dial, OpPlay the live movie,
// collect every delivered frame's arrival lag, and wait for the seal to
// end the stream.
func runBroadcastViewer(srv *core.Server, sim *mcam.SimNet, stack core.StackKind, tr string, res *comboResult, i int, identity bool, start time.Time, pub []atomic.Int64, onJoin func()) (*viewerOutcome, error) {
	didJoin := false
	defer func() {
		if !didJoin {
			onJoin() // a failed viewer must not wedge the join barriers
		}
	}()
	t0 := time.Now()
	client, err := dial(srv, stack, tr)
	if err != nil {
		return nil, fmt.Errorf("dial: %w", err)
	}
	defer client.Close()
	res.op("dial", time.Since(t0))

	addr := fmt.Sprintf("bcast-%s-%s-%05d/video", res.stack, res.transport, i)
	end, err := sim.Listen(addr, netsim.Config{})
	if err != nil {
		return nil, fmt.Errorf("listen: %w", err)
	}
	out := &viewerOutcome{arrivals: make([]arrival, 0, len(pub))}
	recvDone := make(chan mtp.RecvStats, 1)
	go func() {
		st, _ := mtp.ReceiveStream(end, mtp.ReceiverConfig{}, func(f mtp.Frame) {
			seq := int64(f.Seq)
			if seq < int64(len(pub)) {
				if p := pub[seq].Load(); p != 0 {
					lag := time.Since(start) - time.Duration(p)
					if lag < 0 {
						lag = 0
					}
					out.arrivals = append(out.arrivals, arrival{seq: seq, lag: lag})
				}
			}
			if identity {
				out.frames = append(out.frames, append([]byte(nil), f.Payload...))
			}
		})
		recvDone <- st
	}()
	t := time.Now()
	resp, err := client.Call(&mcam.Request{Op: mcam.OpPlay, Movie: broadcastMovie, StreamAddr: addr})
	if err != nil {
		return nil, fmt.Errorf("play: %w", err)
	}
	if !resp.OK() {
		return nil, fmt.Errorf("play: %s (%s)", resp.Status, resp.Diagnostic)
	}
	res.op("play", time.Since(t))
	// Length in the play response is the movie's length at join time: the
	// boundary between history replay and live following.
	out.joinLen = resp.Length
	didJoin = true
	onJoin()

	select {
	case st := <-recvDone:
		out.delivered = st.Delivered
	case <-time.After(sessionTimeout):
		return nil, fmt.Errorf("stream did not terminate after seal")
	}
	return out, nil
}

// broadcastGroundTruth replays the sealed movie from the store for the
// byte-identity check. nil (with an error recorded) if the replay fails.
func broadcastGroundTruth(env *mcam.ServerEnv, res *comboResult) [][]byte {
	m, err := env.Store.Get(broadcastMovie)
	if err != nil {
		res.addErr(fmt.Sprintf("ground truth: %v", err))
		return nil
	}
	frames, err := moviedb.Materialize(m.Content)
	if err != nil {
		res.addErr(fmt.Sprintf("ground truth: %v", err))
		return nil
	}
	return frames
}

// waitGroup waits for wg with the session timeout; false on timeout.
func waitGroup(wg *sync.WaitGroup) bool {
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
		return true
	case <-time.After(sessionTimeout):
		return false
	}
}

func framesEqual(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if string(a[i]) != string(b[i]) {
			return false
		}
	}
	return true
}
