package main

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"xmovie/internal/moviedb"
	"xmovie/internal/mtp"
	"xmovie/internal/spa"
)

// streamAgg accumulates receiver-side data-plane metrics across a combo's
// stream-scenario sessions.
type streamAgg struct {
	n         int
	delivered int64
	lost      int64
	bytes     int64
	elapsed   time.Duration
}

func (s *streamAgg) add(st mtp.RecvStats) {
	s.n++
	s.delivered += int64(st.Delivered)
	s.lost += int64(st.Lost)
	s.bytes += st.Bytes
	s.elapsed += st.Elapsed
}

// throughputMBps is the aggregate received throughput in MB/s (per-stream
// elapsed times summed, so it is a per-stream average, not a combo rate).
func (s streamAgg) throughputMBps() float64 {
	if s.elapsed <= 0 {
		return 0
	}
	return float64(s.bytes) / 1e6 / s.elapsed.Seconds()
}

// comboResult aggregates one stack×transport run: completion counts, wall
// time, per-operation latency samples, and data-plane metrics.
type comboResult struct {
	stack     string
	transport string

	mu        sync.Mutex
	completed int
	skipped   int
	errs      []string
	ops       map[string][]time.Duration
	sessions  []time.Duration
	streams   streamAgg
	// diskCold/diskWarm split the disk scenario's two passes: segment
	// reads through a cold chunk cache versus cache-resident streaming.
	diskCold streamAgg
	diskWarm streamAgg
	// cache is the disk store's chunk-cache counters (nil on memory
	// combos).
	cache *moviedb.CacheStats
	// broadcast is the live fan-out outcome (nil outside the broadcast
	// scenario).
	broadcast *broadcastAgg
	// chaos is the fault-injection outcome (nil outside the chaos
	// scenario).
	chaos *chaosAgg
	// qos is the multi-tenant QoS outcome (nil outside the qos scenario).
	qos *qosAgg
	// scale is the conn-multiplexing tier ladder (nil outside the scale
	// scenario).
	scale *scaleAgg

	wall time.Duration
	peak int64
	// serverStreams is the server-side totals snapshot: frames actually
	// transmitted, dropped by adaptive delivery, late, and feedback seen.
	serverStreams spa.Totals
}

func newComboResult(stack, transport string) *comboResult {
	return &comboResult{stack: stack, transport: transport, ops: make(map[string][]time.Duration)}
}

func (c *comboResult) op(name string, d time.Duration) {
	c.mu.Lock()
	c.ops[name] = append(c.ops[name], d)
	c.mu.Unlock()
}

func (c *comboResult) session(d time.Duration) {
	c.mu.Lock()
	c.sessions = append(c.sessions, d)
	c.mu.Unlock()
}

// stream records one stream-scenario session's receiver statistics.
func (c *comboResult) stream(st mtp.RecvStats) {
	c.mu.Lock()
	c.streams.add(st)
	c.mu.Unlock()
}

// diskStream records one disk-scenario pass ("disk-cold" or "disk-warm").
func (c *comboResult) diskStream(phase string, st mtp.RecvStats) {
	c.mu.Lock()
	if phase == "disk-cold" {
		c.diskCold.add(st)
	} else {
		c.diskWarm.add(st)
	}
	c.mu.Unlock()
}

func (c *comboResult) done() {
	c.mu.Lock()
	c.completed++
	c.mu.Unlock()
}

func (c *comboResult) skip(n int) {
	c.mu.Lock()
	c.skipped += n
	c.mu.Unlock()
}

// addErr records a session failure (capped so a systemic failure doesn't
// produce megabytes of identical messages).
func (c *comboResult) addErr(msg string) {
	c.mu.Lock()
	if len(c.errs) < 1000 {
		c.errs = append(c.errs, msg)
	}
	c.mu.Unlock()
}

// fail records a setup failure that aborted the combo.
func (c *comboResult) fail(msg string) { c.addErr(msg) }

func (c *comboResult) name() string { return c.stack + "/" + c.transport }

func (c *comboResult) opCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, d := range c.ops {
		n += len(d)
	}
	return n
}

func (c *comboResult) sessionsPerSec() float64 {
	if c.wall <= 0 {
		return 0
	}
	return float64(c.completed) / c.wall.Seconds()
}

// allOps merges every op's samples (for the combo-level percentile row).
func (c *comboResult) allOps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var all []time.Duration
	for _, d := range c.ops {
		all = append(all, d...)
	}
	return all
}

// percentile returns the nearest-rank p-th percentile (p in [0,100]) of
// durs, sorting in place. Zero for an empty sample set.
func percentile(durs []time.Duration, p float64) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	rank := int(p/100*float64(len(durs))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(durs) {
		rank = len(durs) - 1
	}
	return durs[rank]
}

func micros(d time.Duration) string {
	return fmt.Sprintf("%.0f", float64(d.Nanoseconds())/1e3)
}

// Report is the aggregate outcome of a harness run.
type Report struct {
	cfg    loadConfig
	combos []*comboResult
}

// OK reports whether every combo completed every session without errors.
func (r *Report) OK() bool {
	for _, c := range r.combos {
		if len(c.errs) > 0 || c.skipped > 0 {
			return false
		}
	}
	return true
}

// header is the combo-summary row shape shared by Table and BenchJSON.
var header = []string{
	"combo", "sessions", "concurrent", "sessions/s", "ops",
	"p50(µs)", "p95(µs)", "p99(µs)", "peak", "errors", "skipped",
}

func (r *Report) rows() [][]string {
	var rows [][]string
	for _, c := range r.combos {
		all := c.allOps()
		p50, p95, p99 := percentile(all, 50), percentile(all, 95), percentile(all, 99)
		rows = append(rows, []string{
			c.name(),
			fmt.Sprint(c.completed),
			fmt.Sprint(r.cfg.Concurrent),
			fmt.Sprintf("%.0f", c.sessionsPerSec()),
			fmt.Sprint(c.opCount()),
			micros(p50), micros(p95), micros(p99),
			fmt.Sprint(c.peak),
			fmt.Sprint(len(c.errs)),
			fmt.Sprint(c.skipped),
		})
	}
	return rows
}

// notes carries the per-operation latency breakdown and any error samples.
func (r *Report) notes() []string {
	var notes []string
	notes = append(notes, fmt.Sprintf("scenario mix: %s; catalogue %d movies × %d frames",
		strings.Join(r.cfg.Scenarios, ","), r.cfg.Movies, r.cfg.Frames))
	for _, c := range r.combos {
		c.mu.Lock()
		names := make([]string, 0, len(c.ops))
		for name := range c.ops {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			d := c.ops[name]
			notes = append(notes, fmt.Sprintf("%s %-8s n=%-6d p50=%sµs p95=%sµs p99=%sµs",
				c.name(), name, len(d),
				micros(percentile(d, 50)), micros(percentile(d, 95)), micros(percentile(d, 99))))
		}
		sess := append([]time.Duration(nil), c.sessions...)
		if len(sess) > 0 {
			notes = append(notes, fmt.Sprintf("%s session  n=%-6d p50=%sµs p95=%sµs p99=%sµs",
				c.name(), len(sess),
				micros(percentile(sess, 50)), micros(percentile(sess, 95)), micros(percentile(sess, 99))))
		}
		if c.streams.n > 0 {
			notes = append(notes, fmt.Sprintf(
				"%s stream   n=%-6d delivered=%d lost=%d recvMB/s=%.2f",
				c.name(), c.streams.n, c.streams.delivered, c.streams.lost,
				c.streams.throughputMBps()))
		}
		if c.diskCold.n > 0 || c.diskWarm.n > 0 {
			notes = append(notes, fmt.Sprintf(
				"%s disk     cold n=%-5d %.2fMB/s | warm n=%-5d %.2fMB/s",
				c.name(), c.diskCold.n, c.diskCold.throughputMBps(),
				c.diskWarm.n, c.diskWarm.throughputMBps()))
		}
		if c.cache != nil {
			notes = append(notes, fmt.Sprintf(
				"%s cache    hits=%d misses=%d evictions=%d resident=%dB/%dB",
				c.name(), c.cache.Hits, c.cache.Misses, c.cache.Evictions,
				c.cache.Bytes, c.cache.CapBytes))
		}
		if b := c.broadcast; b != nil {
			notes = append(notes, fmt.Sprintf(
				"%s broadcast viewers=%d (late %d) published=%d delivered=%d fanout=%.0ffr/s identity=%v",
				c.name(), b.viewers, b.late, b.published, b.delivered,
				b.fanoutPerSec(), b.identity))
			notes = append(notes, fmt.Sprintf(
				"%s live-lag n=%-6d p50=%sµs p95=%sµs p99=%sµs",
				c.name(), b.lagN,
				micros(b.lagP50), micros(b.lagP95), micros(b.lagP99)))
		}
		if ch := c.chaos; ch != nil {
			notes = append(notes, fmt.Sprintf(
				"%s slow-disk delivered=%d skipped=%d injected-stalls=%d",
				c.name(), ch.slowDelivered, ch.slowLost, ch.slowInjected))
			notes = append(notes, fmt.Sprintf(
				"%s partition before=%d delivered=%d lost=%d",
				c.name(), ch.partBefore, ch.partDelivered, ch.partLost))
			notes = append(notes, fmt.Sprintf(
				"%s spike    delivered=%d max-gap=%v",
				c.name(), ch.spikeDelivered, ch.spikeMaxGap))
			notes = append(notes, fmt.Sprintf(
				"%s herd     clients=%d reconnected=%d redials=%d p50=%v p95=%v p99=%v envelope=%v",
				c.name(), ch.herdClients, ch.herdReconnects, ch.herdRedials,
				ch.herdP50, ch.herdP95, ch.herdP99, ch.herdEnvelope))
			notes = append(notes, fmt.Sprintf(
				"%s resume   frames=%d dups=%d identity=%v leaked-goroutines=%d",
				c.name(), ch.resumeFrames, ch.resumeDups, ch.resumeIdentity, ch.leakedGoroutines))
		}
		if q := c.qos; q != nil {
			notes = append(notes, fmt.Sprintf(
				"%s qos-admit gold=%d/%d preemptions=%d free-preempted=%d peak=%d",
				c.name(), q.goldAdmitted, qosGoldDials, q.goldPreemptions,
				q.freePreempted, q.peak))
			notes = append(notes, fmt.Sprintf(
				"%s qos-gold rate=%.0fB/s cap=%dB/s (%+.1f%%) bytes=%d throttle-waits=%d",
				c.name(), q.goldRate, qosGoldBps,
				100*(q.goldRate-qosGoldBps)/qosGoldBps, q.goldBytes, q.goldWaits))
			notes = append(notes, fmt.Sprintf(
				"%s qos-free rate=%.0fB/s cap=%dB/s (%+.1f%%) bytes=%d throttle-waits=%d",
				c.name(), q.freeRate, qosFreeBps,
				100*(q.freeRate-qosFreeBps)/qosFreeBps, q.freeBytes, q.freeWaits))
			notes = append(notes, fmt.Sprintf(
				"%s qos-metrics families=%d scrape-ok=%v",
				c.name(), q.metricFamilies, q.scrapeOK))
		}
		if sc := c.scale; sc != nil {
			for _, t := range sc.tiers {
				notes = append(notes, fmt.Sprintf(
					"%s scale    sessions=%-7d conns=%-4d ops=%-7d ops/s=%-8.0f p50=%sµs p95=%sµs p99=%sµs mem/session=%dB slo=%v",
					c.name(), t.sessions, t.conns, t.ops, t.opsPerSec(),
					micros(t.p50), micros(t.p95), micros(t.p99),
					t.bytesPerSess, t.sloOK))
			}
		}
		if c.serverStreams.Streams > 0 {
			notes = append(notes, fmt.Sprintf(
				"%s spa      streams=%d frames=%d dropped=%d late=%d feedback=%d bytes=%d",
				c.name(), c.serverStreams.Streams, c.serverStreams.Frames,
				c.serverStreams.Dropped, c.serverStreams.Late,
				c.serverStreams.Feedback, c.serverStreams.Bytes))
		}
		for i, e := range c.errs {
			if i >= 5 {
				notes = append(notes, fmt.Sprintf("%s ... %d more errors", c.name(), len(c.errs)-i))
				break
			}
			notes = append(notes, fmt.Sprintf("%s ERROR: %s", c.name(), e))
		}
		c.mu.Unlock()
	}
	return notes
}

// Table renders the human-readable report.
func (r *Report) Table() string {
	var b strings.Builder
	rows := append([][]string{header}, r.rows()...)
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	b.WriteString("mcamload — concurrent-session load harness\n")
	for _, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	for _, n := range r.notes() {
		b.WriteString("  " + n + "\n")
	}
	return b.String()
}

// benchJSON mirrors cmd/mcambench's experiment JSON shape so the trajectory
// artifacts are uniform.
type benchJSON struct {
	Name   string     `json:"name"`
	Title  string     `json:"title,omitempty"`
	Shape  string     `json:"shape"`
	Error  string     `json:"error,omitempty"`
	Header []string   `json:"header,omitempty"`
	Rows   [][]string `json:"rows,omitempty"`
	Notes  []string   `json:"notes,omitempty"`
}

// BenchJSON builds the BENCH_<name>.json payload.
func (r *Report) BenchJSON(name string) benchJSON {
	out := benchJSON{
		Name:   name,
		Title:  "Concurrent-session load harness (sessions/sec, op latency percentiles)",
		Shape:  "ok",
		Header: header,
		Rows:   r.rows(),
		Notes:  r.notes(),
	}
	if !r.OK() {
		out.Shape = "error"
		out.Error = "load harness recorded errors or skipped sessions"
	}
	return out
}
