// Command mcambench regenerates the paper's tables, figures and measured
// results and prints them in paper-style form. Without arguments it runs
// everything; with arguments it runs the named experiments (t1, f1, f2,
// f3, e1..e8).
package main

import (
	"fmt"
	"os"
	"strings"

	"xmovie/internal/experiments"
)

var all = []struct {
	id string
	fn func() (*experiments.Result, error)
}{
	{"t1", experiments.Table1},
	{"f1", experiments.Figure1},
	{"f2", experiments.Figure2},
	{"f3", experiments.Figure3},
	{"e1", experiments.Exp1SeqVsPar},
	{"e2", experiments.Exp2Grouping},
	{"e3", experiments.Exp3Pipeline},
	{"e4", experiments.Exp4Dispatch},
	{"e5", experiments.Exp5Scheduler},
	{"e6", experiments.Exp6GenVsHand},
	{"e7", experiments.Exp7ParallelASN1},
	{"e8", experiments.Exp8ConnVsLayer},
}

func main() {
	want := map[string]bool{}
	for _, a := range os.Args[1:] {
		want[strings.ToLower(a)] = true
	}
	failed := false
	for _, exp := range all {
		if len(want) > 0 && !want[exp.id] {
			continue
		}
		r, err := exp.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcambench: %s: %v\n", exp.id, err)
			failed = true
			continue
		}
		fmt.Println(r)
	}
	if failed {
		os.Exit(1)
	}
}
