// Command mcambench regenerates the paper's tables, figures and measured
// results and prints them in paper-style form. Without arguments it runs
// everything; with arguments it runs the named experiments (t1, f1, f2,
// f3, e1..e8) and/or the hot-path micro-benchmarks (hot: the runtime
// send→select→fire cycle, the append-path PDU codecs, and the MTP stream
// paths including the zero-copy batched send).
//
// With -json, every result is additionally written as a machine-readable
// BENCH_<name>.json file (into -outdir), so CI can archive the performance
// trajectory: experiments carry their table and an ok/error shape verdict;
// hot paths carry ns/op, allocs/op and an ok/regression verdict against
// their allocation budget.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"xmovie/internal/experiments"
)

var all = []struct {
	id string
	fn func() (*experiments.Result, error)
}{
	{"t1", experiments.Table1},
	{"f1", experiments.Figure1},
	{"f2", experiments.Figure2},
	{"f3", experiments.Figure3},
	{"e1", experiments.Exp1SeqVsPar},
	{"e2", experiments.Exp2Grouping},
	{"e3", experiments.Exp3Pipeline},
	{"e4", experiments.Exp4Dispatch},
	{"e5", experiments.Exp5Scheduler},
	{"e6", experiments.Exp6GenVsHand},
	{"e7", experiments.Exp7ParallelASN1},
	{"e8", experiments.Exp8ConnVsLayer},
}

// experimentJSON is the BENCH_<id>.json schema for paper experiments.
type experimentJSON struct {
	Name   string     `json:"name"`
	Title  string     `json:"title,omitempty"`
	Shape  string     `json:"shape"`
	Error  string     `json:"error,omitempty"`
	Header []string   `json:"header,omitempty"`
	Rows   [][]string `json:"rows,omitempty"`
	Notes  []string   `json:"notes,omitempty"`
}

func writeJSON(dir, name string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(filepath.Join(dir, "BENCH_"+name+".json"), data, 0o644)
}

func main() {
	jsonOut := flag.Bool("json", false, "also write each result as BENCH_<name>.json")
	outDir := flag.String("outdir", "bench-out", "directory for -json output files (created if missing)")
	flag.Parse()
	if *jsonOut {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "mcambench: %v\n", err)
			os.Exit(1)
		}
	}

	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToLower(a)] = true
	}
	failed := false
	emit := func(name string, v any) {
		if !*jsonOut {
			return
		}
		if err := writeJSON(*outDir, name, v); err != nil {
			fmt.Fprintf(os.Stderr, "mcambench: write BENCH_%s.json: %v\n", name, err)
			failed = true
		}
	}
	for _, exp := range all {
		if len(want) > 0 && !want[exp.id] {
			continue
		}
		r, err := exp.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcambench: %s: %v\n", exp.id, err)
			emit(exp.id, experimentJSON{Name: exp.id, Shape: "error", Error: err.Error()})
			failed = true
			continue
		}
		fmt.Println(r)
		emit(exp.id, experimentJSON{
			Name: exp.id, Title: r.Title, Shape: "ok",
			Header: r.Header, Rows: r.Rows, Notes: r.Notes,
		})
	}
	// Hot-path micro-benchmarks: run when selected explicitly ("hot") or
	// when everything runs with -json (the trajectory artifact).
	if want["hot"] || (len(want) == 0 && *jsonOut) {
		for _, h := range experiments.HotPaths() {
			fmt.Printf("[hot] %-16s %12.1f ns/op %8d B/op %6d allocs/op (budget %d) %s\n",
				h.Name, h.NsPerOp, h.BytesPerOp, h.AllocsPerOp, h.MaxAllocs, h.Shape)
			emit(h.Name, h)
			if h.Shape != "ok" {
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
