// Command mcamctl is the MCAM command-line client: movie access,
// management and control against an mcamd server, with playback received
// on a local UDP socket.
//
// Usage:
//
//	mcamctl -server 127.0.0.1:10240 list
//	mcamctl -server ... create NAME [rate]
//	mcamctl -server ... delete NAME
//	mcamctl -server ... query NAME
//	mcamctl -server ... set NAME key=value [key=value...]
//	mcamctl -server ... record NAME DEVICE COUNT
//	mcamctl -server ... play NAME
//
// Offline segment-store administration (no server involved; -data points
// at an mcamd disk-store directory, frame files are length-prefixed raw
// frames):
//
//	mcamctl -data DIR import NAME FRAMEFILE [rate]
//	mcamctl -data DIR -append import NAME FRAMEFILE
//	mcamctl -data DIR export NAME FRAMEFILE
//
// import creates the movie and refuses to touch an existing one unless
// -append is given (a retried import must not silently duplicate frames);
// the rate argument applies only at creation.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"xmovie"
	"xmovie/internal/moviedb"
	"xmovie/internal/mtp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mcamctl:", err)
		os.Exit(1)
	}
}

func run() error {
	server := flag.String("server", "127.0.0.1:10240", "mcamd control address")
	stackName := flag.String("stack", "generated", "control stack: generated | handcoded")
	dataDir := flag.String("data", "", "disk-store directory for offline import/export")
	appendTo := flag.Bool("append", false, "import: append to an existing movie instead of refusing")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return fmt.Errorf("missing command (list|create|delete|query|set|record|play|import|export)")
	}
	switch args[0] {
	case "import", "export":
		return runOffline(*dataDir, *appendTo, args)
	}
	stack := xmovie.StackGenerated
	if *stackName == "handcoded" {
		stack = xmovie.StackHandcoded
	}
	client, err := xmovie.Dial(*server, xmovie.ClientConfig{Stack: stack})
	if err != nil {
		return err
	}
	defer client.Close()

	switch args[0] {
	case "list":
		movies, err := client.List()
		if err != nil {
			return err
		}
		for _, m := range movies {
			fmt.Println(m)
		}
		return nil
	case "create":
		if len(args) < 2 {
			return fmt.Errorf("create NAME [rate]")
		}
		rate := 25
		if len(args) > 2 {
			if rate, err = strconv.Atoi(args[2]); err != nil {
				return err
			}
		}
		return client.Create(args[1], rate, nil)
	case "delete":
		if len(args) != 2 {
			return fmt.Errorf("delete NAME")
		}
		return client.Delete(args[1])
	case "query":
		if len(args) != 2 {
			return fmt.Errorf("query NAME")
		}
		attrs, err := client.Query(args[1])
		if err != nil {
			return err
		}
		keys := make([]string, 0, len(attrs))
		for k := range attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%s = %s\n", k, attrs[k])
		}
		return nil
	case "set":
		if len(args) < 3 {
			return fmt.Errorf("set NAME key=value...")
		}
		updates := make(map[string]string)
		for _, kv := range args[2:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("bad attribute %q", kv)
			}
			updates[k] = v
		}
		return client.Modify(args[1], updates)
	case "record":
		if len(args) != 4 {
			return fmt.Errorf("record NAME DEVICE COUNT")
		}
		count, err := strconv.Atoi(args[3])
		if err != nil {
			return err
		}
		length, err := client.Record(args[1], args[2], int64(count))
		if err != nil {
			return err
		}
		fmt.Printf("recorded; movie is now %d frames\n", length)
		return nil
	case "play":
		if len(args) != 2 {
			return fmt.Errorf("play NAME")
		}
		return play(client, args[1])
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// runOffline executes the segment-store administration commands directly
// against a disk store — the bulk path for moving raw frame files in and
// out of the movie database without a running server.
func runOffline(dataDir string, appendTo bool, args []string) error {
	if dataDir == "" {
		return fmt.Errorf("%s needs -data DIR", args[0])
	}
	store, err := xmovie.OpenDiskStore(dataDir)
	if err != nil {
		return err
	}
	defer store.Close()

	switch args[0] {
	case "import":
		if len(args) < 3 || len(args) > 4 {
			return fmt.Errorf("import NAME FRAMEFILE [rate]")
		}
		name, path := args[1], args[2]
		rate := 25
		if len(args) == 4 {
			if appendTo {
				return fmt.Errorf("rate applies only when import creates the movie; drop it with -append")
			}
			if rate, err = strconv.Atoi(args[3]); err != nil {
				return err
			}
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		frames, err := moviedb.ReadRawFrames(f)
		if err != nil {
			// A partially written frame file (e.g. copied mid-write or
			// truncated by a crash) is refused outright rather than imported
			// as a shortened movie.
			return fmt.Errorf("%s: %w; nothing was imported", path, err)
		}
		if err := store.Create(&moviedb.Movie{Name: name, FrameRate: rate}); err != nil {
			// A retried import must not silently double the movie: only
			// -append touches an existing one.
			if !errors.Is(err, moviedb.ErrExists) {
				return err
			}
			if !appendTo {
				return fmt.Errorf("%s already exists (use -append to add these frames to it)", name)
			}
		}
		if err := store.AppendFrames(name, frames); err != nil {
			return err
		}
		m, err := store.Get(name)
		if err != nil {
			return err
		}
		fmt.Printf("imported %d frames; %s is now %d frames\n", len(frames), name, m.FrameCount())
		return nil
	case "export":
		if len(args) != 3 {
			return fmt.Errorf("export NAME FRAMEFILE")
		}
		name, path := args[1], args[2]
		m, err := store.Get(name)
		if err != nil {
			return err
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		// Snapshot the length before opening: on a movie that is being
		// recorded (another process appending to the same store directory),
		// the source follows the live tail and the export would otherwise
		// chase it forever. The bounded write yields a consistent prefix.
		limit := m.FrameCount()
		src := m.Open()
		n, werr := moviedb.WriteRawFramesN(f, src, limit)
		src.Close()
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("exported %d frames of %s to %s\n", n, name, path)
		return nil
	default:
		return fmt.Errorf("unknown offline command %q", args[0])
	}
}

func play(client *xmovie.Client, movie string) error {
	lis, err := mtp.ListenUDP("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer lis.Close()
	length, rate, err := client.Select(movie)
	if err != nil {
		return err
	}
	fmt.Printf("playing %s: %d frames at %d fps -> %s\n", movie, length, rate, lis.Addr())
	done := make(chan mtp.RecvStats, 1)
	go func() {
		st, _ := mtp.ReceiveStream(lis, mtp.ReceiverConfig{}, nil)
		done <- st
	}()
	start := time.Now()
	if _, err := client.Play(movie, lis.Addr()); err != nil {
		return err
	}
	st := <-done
	fmt.Printf("done: %d/%d frames (%.1f%%), jitter %d us, %v\n",
		st.Delivered, length, st.DeliveryRatio()*100, st.JitterMicro,
		time.Since(start).Round(time.Millisecond))
	return nil
}
