// Command estgen parses Estelle-subset specifications and generates Go
// source targeting the estelle runtime — the code-generation step of the
// paper's methodology (§4.2).
//
// Usage:
//
//	estgen -check spec.est            validate only
//	estgen -pkg gen -o out.go spec.est
package main

import (
	"flag"
	"fmt"
	"os"

	"xmovie/internal/estelle/estgen"
	"xmovie/internal/estelle/estparse"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "estgen:", err)
		os.Exit(1)
	}
}

func run() error {
	check := flag.Bool("check", false, "parse and validate only")
	pkg := flag.String("pkg", "gen", "package name of the generated file")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: estgen [-check] [-pkg name] [-o file] spec.est")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	spec, err := estparse.Parse(string(src))
	if err != nil {
		return err
	}
	if *check {
		fmt.Printf("specification %s: %d channels, %d modules, %d bodies, %d config statements\n",
			spec.Name, len(spec.Channels), len(spec.Modules), len(spec.Bodies), len(spec.Config))
		return nil
	}
	code, err := estgen.Generate(spec, estgen.Options{Package: *pkg})
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(code)
		return err
	}
	return os.WriteFile(*out, code, 0o644)
}
