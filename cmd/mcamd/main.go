// Command mcamd runs an MCAM server entity: the "server machine" of the
// paper's Fig. 2, serving movie control connections over the chosen stack
// and streaming movies over UDP.
//
// Usage:
//
//	mcamd -addr 127.0.0.1:10240 -stack generated -movies 8 -frames 250
//	mcamd -data /var/lib/mcam            # durable disk-backed catalogue
//
// With -data the movie database lives on disk: movies recorded through
// OpRecord (and the seeded catalogue) survive restarts, and the seed only
// fills in names that are not already stored.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"xmovie"
	"xmovie/internal/equipment"
	"xmovie/internal/moviedb"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:10240", "control-plane listen address (TPKT/TCP)")
	stackName := flag.String("stack", "generated", "control stack: generated | handcoded")
	movies := flag.Int("movies", 8, "number of synthetic movies to seed")
	frames := flag.Int("frames", 250, "frames per synthetic movie")
	procs := flag.Int("procs", 0, "virtual processor limit for the generated stack (0 = unlimited)")
	dataDir := flag.String("data", "", "data directory for the durable disk store (empty = in-memory)")
	flag.Parse()

	stack := xmovie.StackGenerated
	switch *stackName {
	case "generated":
	case "handcoded":
		stack = xmovie.StackHandcoded
	default:
		fmt.Fprintln(os.Stderr, "mcamd: unknown stack", *stackName)
		os.Exit(2)
	}

	eca := equipment.NewECA("mcamd")
	if err := eca.Register(equipment.NewCamera("cam1", 2048)); err != nil {
		fmt.Fprintln(os.Stderr, "mcamd:", err)
		os.Exit(1)
	}

	// The server builds the store from the backend selection (a durable
	// sharded segment store under -data, in-memory otherwise) and
	// publishes it into env.Store for seeding.
	backend := xmovie.BackendMemory
	if *dataDir != "" {
		backend = xmovie.BackendDisk
	}
	env := &xmovie.ServerEnv{
		Dialer: xmovie.UDPDialer(), // Play requests carry host:port UDP addresses
		EUA:    equipment.NewEUA(eca, "mcamd"),
	}
	srv, err := xmovie.ListenAndServe(xmovie.ServerConfig{
		Addr:       *addr,
		Stack:      stack,
		Env:        env,
		Backend:    backend,
		DataDir:    *dataDir,
		Processors: *procs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcamd:", err)
		os.Exit(1)
	}
	// Seed the synthetic catalogue, keeping whatever the disk store already
	// holds — recorded movies must survive restarts.
	seeded := 0
	for i := 0; i < *movies; i++ {
		name := fmt.Sprintf("movie-%d", i)
		// Lazy synthesis: the disk store drains the generator straight to
		// its segment file chunk by chunk, the memory store serves it on
		// demand — either way the catalogue never materializes in RAM here.
		err := env.Store.Create(xmovie.SynthMovie(name, *frames, 25))
		switch {
		case err == nil:
			seeded++
		case errors.Is(err, moviedb.ErrExists):
			// already durable from a previous run
		default:
			fmt.Fprintln(os.Stderr, "mcamd:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("mcamd: serving %d movies (%d newly seeded) on %s (%s stack, %s store); streams go to client UDP addresses\n",
		len(env.Store.List()), seeded, srv.Addr(), *stackName, backend)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("mcamd: shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "mcamd:", err)
		os.Exit(1)
	}
}
