// Command mcamd runs an MCAM server entity: the "server machine" of the
// paper's Fig. 2, serving movie control connections over the chosen stack
// and streaming movies over UDP.
//
// Usage:
//
//	mcamd -addr 127.0.0.1:10240 -stack generated -movies 8 -frames 250
//	mcamd -data /var/lib/mcam            # durable disk-backed catalogue
//
// With -data the movie database lives on disk: movies recorded through
// OpRecord (and the seeded catalogue) survive restarts, and the seed only
// fills in names that are not already stored.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"xmovie"
	"xmovie/internal/equipment"
	"xmovie/internal/moviedb"
)

// parseTenant parses one -tenant value, "name:priority[:quota[:bw]]":
// admission priority, optional session quota (0 = unlimited) and optional
// aggregate stream-bandwidth cap in bytes/second (0 = uncapped).
func parseTenant(spec string) (string, xmovie.QoSClass, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 4 || parts[0] == "" {
		return "", xmovie.QoSClass{}, fmt.Errorf("want name:priority[:quota[:bw]], got %q", spec)
	}
	cls := xmovie.QoSClass{Name: parts[0]}
	fields := []*int{&cls.Priority, &cls.MaxSessions}
	for i, p := range parts[1:] {
		n, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return "", xmovie.QoSClass{}, fmt.Errorf("%q: %v", spec, err)
		}
		if i < 2 {
			*fields[i] = int(n)
		} else {
			cls.StreamBandwidth = n
		}
	}
	return parts[0], cls, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:10240", "control-plane listen address (TPKT/TCP)")
	stackName := flag.String("stack", "generated", "control stack: generated | handcoded")
	movies := flag.Int("movies", 8, "number of synthetic movies to seed")
	frames := flag.Int("frames", 250, "frames per synthetic movie")
	procs := flag.Int("procs", 0, "virtual processor limit for the generated stack (0 = unlimited)")
	dataDir := flag.String("data", "", "data directory for the durable disk store (empty = in-memory)")
	metricsAddr := flag.String("metrics", "", "serve Prometheus metrics on http://ADDR/metrics (empty = off)")
	qosLog := flag.Bool("qos-log", false, "log one JSON line per QoS admission decision to stderr")
	tenants := map[string]xmovie.QoSClass{}
	flag.Func("tenant", "tenant class name:priority[:quota[:bw]] (repeatable)", func(spec string) error {
		name, cls, err := parseTenant(spec)
		if err != nil {
			return err
		}
		tenants[name] = cls
		return nil
	})
	flag.Parse()

	stack := xmovie.StackGenerated
	switch *stackName {
	case "generated":
	case "handcoded":
		stack = xmovie.StackHandcoded
	default:
		fmt.Fprintln(os.Stderr, "mcamd: unknown stack", *stackName)
		os.Exit(2)
	}

	eca := equipment.NewECA("mcamd")
	if err := eca.Register(equipment.NewCamera("cam1", 2048)); err != nil {
		fmt.Fprintln(os.Stderr, "mcamd:", err)
		os.Exit(1)
	}

	// The server builds the store from the backend selection (a durable
	// sharded segment store under -data, in-memory otherwise) and
	// publishes it into env.Store for seeding.
	backend := xmovie.BackendMemory
	if *dataDir != "" {
		backend = xmovie.BackendDisk
	}
	env := &xmovie.ServerEnv{
		Dialer: xmovie.UDPDialer(), // Play requests carry host:port UDP addresses
		EUA:    equipment.NewEUA(eca, "mcamd"),
	}
	cfg := xmovie.ServerConfig{
		Addr:        *addr,
		MetricsAddr: *metricsAddr,
		Stack:       stack,
		Env:         env,
		Backend:     backend,
		DataDir:     *dataDir,
		Processors:  *procs,
	}
	if len(tenants) > 0 {
		cfg.Limits.QoS = xmovie.QoSPolicy{Tenants: tenants}
	}
	if *qosLog {
		cfg.QoSLog = os.Stderr
	}
	srv, err := xmovie.ListenAndServe(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcamd:", err)
		os.Exit(1)
	}
	// Seed the synthetic catalogue, keeping whatever the disk store already
	// holds — recorded movies must survive restarts.
	seeded := 0
	for i := 0; i < *movies; i++ {
		name := fmt.Sprintf("movie-%d", i)
		// Lazy synthesis: the disk store drains the generator straight to
		// its segment file chunk by chunk, the memory store serves it on
		// demand — either way the catalogue never materializes in RAM here.
		err := env.Store.Create(xmovie.SynthMovie(name, *frames, 25))
		switch {
		case err == nil:
			seeded++
		case errors.Is(err, moviedb.ErrExists):
			// already durable from a previous run
		default:
			fmt.Fprintln(os.Stderr, "mcamd:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("mcamd: serving %d movies (%d newly seeded) on %s (%s stack, %s store); streams go to client UDP addresses\n",
		len(env.Store.List()), seeded, srv.Addr(), *stackName, backend)
	if srv.MetricsAddr() != "" {
		fmt.Printf("mcamd: metrics on http://%s/metrics\n", srv.MetricsAddr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("mcamd: shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "mcamd:", err)
		os.Exit(1)
	}
}
