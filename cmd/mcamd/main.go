// Command mcamd runs an MCAM server entity: the "server machine" of the
// paper's Fig. 2, serving movie control connections over the chosen stack
// and streaming movies over UDP.
//
// Usage:
//
//	mcamd -addr 127.0.0.1:10240 -stack generated -movies 8 -frames 250
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"xmovie"
	"xmovie/internal/equipment"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:10240", "control-plane listen address (TPKT/TCP)")
	stackName := flag.String("stack", "generated", "control stack: generated | handcoded")
	movies := flag.Int("movies", 8, "number of synthetic movies to seed")
	frames := flag.Int("frames", 250, "frames per synthetic movie")
	procs := flag.Int("procs", 0, "virtual processor limit for the generated stack (0 = unlimited)")
	flag.Parse()

	stack := xmovie.StackGenerated
	switch *stackName {
	case "generated":
	case "handcoded":
		stack = xmovie.StackHandcoded
	default:
		fmt.Fprintln(os.Stderr, "mcamd: unknown stack", *stackName)
		os.Exit(2)
	}

	store := xmovie.NewMemStore()
	for i := 0; i < *movies; i++ {
		name := fmt.Sprintf("movie-%d", i)
		if err := store.Create(xmovie.Synthesize(name, *frames, 25)); err != nil {
			fmt.Fprintln(os.Stderr, "mcamd:", err)
			os.Exit(1)
		}
	}
	eca := equipment.NewECA("mcamd")
	if err := eca.Register(equipment.NewCamera("cam1", 2048)); err != nil {
		fmt.Fprintln(os.Stderr, "mcamd:", err)
		os.Exit(1)
	}

	srv, err := xmovie.ListenAndServe(xmovie.ServerConfig{
		Addr:  *addr,
		Stack: stack,
		Env: &xmovie.ServerEnv{
			Store:  store,
			Dialer: xmovie.UDPDialer(), // Play requests carry host:port UDP addresses
			EUA:    equipment.NewEUA(eca, "mcamd"),
		},
		Processors: *procs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcamd:", err)
		os.Exit(1)
	}
	fmt.Printf("mcamd: serving %d movies on %s (%s stack); streams go to client UDP addresses\n",
		*movies, srv.Addr(), *stackName)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("mcamd: shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "mcamd:", err)
		os.Exit(1)
	}
}
