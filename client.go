package xmovie

import (
	"fmt"
	"time"

	"xmovie/internal/core"
)

// ClientConfig configures Dial.
type ClientConfig struct {
	// Stack selects the control stack (default StackGenerated).
	Stack StackKind
	// CallTimeout bounds association setup and each Call on both stacks
	// (default 30s): a dead or wedged server returns ErrTimeout instead of
	// hanging the client forever.
	CallTimeout time.Duration
}

// Client is an MCAM client entity: the application interface of the paper's
// §4.1, wrapped in one method per MCAM service element.
type Client struct {
	inner *core.Client
}

// Dial connects to an MCAM server's control plane.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	inner, err := core.Dial(addr, core.ClientConfig{Stack: cfg.Stack, CallTimeout: cfg.CallTimeout})
	if err != nil {
		return nil, err
	}
	return &Client{inner: inner}, nil
}

// NewClientConn builds a client over an existing transport connection (e.g.
// one end of a Pipe served by Server.ServeConn).
func NewClientConn(conn Conn, cfg ClientConfig) (*Client, error) {
	inner, err := core.NewClientConn(conn, core.ClientConfig{Stack: cfg.Stack, CallTimeout: cfg.CallTimeout})
	if err != nil {
		return nil, err
	}
	return &Client{inner: inner}, nil
}

// Close releases the association.
func (c *Client) Close() error { return c.inner.Close() }

// Call performs a raw MCAM operation.
func (c *Client) Call(req *Request) (*Response, error) { return c.inner.Call(req) }

// do runs a request and folds protocol-level failures into errors.
func (c *Client) do(req *Request) (*Response, error) {
	resp, err := c.inner.Call(req)
	if err != nil {
		return nil, err
	}
	if !resp.OK() {
		return resp, fmt.Errorf("xmovie: %s: %s (%s)", req.Op, resp.Status, resp.Diagnostic)
	}
	return resp, nil
}

// List returns the server's movie names.
func (c *Client) List() ([]string, error) {
	resp, err := c.do(&Request{Op: OpListMovies})
	if err != nil {
		return nil, err
	}
	return resp.Movies, nil
}

// Create registers a new (empty) movie with attributes.
func (c *Client) Create(name string, frameRate int, attrs map[string]string) error {
	req := &Request{Op: OpCreate, Movie: name, FrameRate: int64(frameRate)}
	for k, v := range attrs {
		req.Attrs = append(req.Attrs, Attr{Name: k, Value: v})
	}
	_, err := c.do(req)
	return err
}

// Delete removes a movie.
func (c *Client) Delete(name string) error {
	_, err := c.do(&Request{Op: OpDelete, Movie: name})
	return err
}

// Select opens a movie for subsequent control operations and returns its
// frame count and frame rate.
func (c *Client) Select(name string) (length int64, frameRate int64, err error) {
	resp, err := c.do(&Request{Op: OpSelect, Movie: name})
	if err != nil {
		return 0, 0, err
	}
	return resp.Length, resp.FrameRate, nil
}

// Query returns a movie's attributes (the selected movie when name is "").
func (c *Client) Query(name string) (map[string]string, error) {
	resp, err := c.do(&Request{Op: OpQueryAttributes, Movie: name})
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(resp.Attrs))
	for _, a := range resp.Attrs {
		out[a.Name] = a.Value
	}
	return out, nil
}

// Modify updates attributes (empty value deletes a key).
func (c *Client) Modify(name string, attrs map[string]string) error {
	req := &Request{Op: OpModifyAttributes, Movie: name}
	for k, v := range attrs {
		req.Attrs = append(req.Attrs, Attr{Name: k, Value: v})
	}
	_, err := c.do(req)
	return err
}

// Play starts streaming the movie to streamAddr (a SimNet name or UDP
// address the server's dialer understands) and returns the stream id.
func (c *Client) Play(name, streamAddr string) (streamID int64, err error) {
	resp, err := c.do(&Request{Op: OpPlay, Movie: name, StreamAddr: streamAddr})
	if err != nil {
		return 0, err
	}
	return resp.StreamID, nil
}

// PlayFrom starts streaming from a frame position with an optional frame
// count (0 = to the end).
func (c *Client) PlayFrom(name, streamAddr string, position, count int64) (int64, error) {
	resp, err := c.do(&Request{Op: OpPlay, Movie: name, StreamAddr: streamAddr,
		Position: position, Count: count})
	if err != nil {
		return 0, err
	}
	return resp.StreamID, nil
}

// Record captures count frames from the named equipment device into the
// movie and returns the new length.
func (c *Client) Record(movie, device string, count int64) (int64, error) {
	resp, err := c.do(&Request{Op: OpRecord, Movie: movie, Device: device, Count: count})
	if err != nil {
		return 0, err
	}
	return resp.Length, nil
}

// Pause suspends a stream.
func (c *Client) Pause(streamID int64) error {
	_, err := c.do(&Request{Op: OpPause, StreamID: streamID})
	return err
}

// Resume continues a paused stream.
func (c *Client) Resume(streamID int64) error {
	_, err := c.do(&Request{Op: OpResume, StreamID: streamID})
	return err
}

// Stop cancels a stream and returns the position reached.
func (c *Client) Stop(streamID int64) (int64, error) {
	resp, err := c.do(&Request{Op: OpStop, StreamID: streamID})
	if err != nil {
		return 0, err
	}
	return resp.Position, nil
}

// SeekTo repositions the active stream streamID to position — live, without
// restarting the transmission; the receiver resynchronizes on the MTP sync
// flag. With streamID 0 (or a finished stream) it validates the position
// against the selected movie for a later PlayFrom.
func (c *Client) SeekTo(streamID, position int64) (int64, error) {
	resp, err := c.do(&Request{Op: OpSeek, StreamID: streamID, Position: position})
	if err != nil {
		return 0, err
	}
	return resp.Position, nil
}

// AwaitEvent blocks for the next stream event on either stack, bounded by
// timeout (ErrTimeout). A closed or severed association returns ErrClosed
// immediately instead of burning the timeout.
func (c *Client) AwaitEvent(timeout time.Duration) (Event, error) {
	if app := c.inner.App(); app != nil {
		return app.AwaitEvent(timeout)
	}
	if iso := c.inner.Iso(); iso != nil {
		return iso.AwaitEventTimeout(timeout)
	}
	return Event{}, fmt.Errorf("xmovie: no event source")
}
