package xmovie

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ReconnectConfig tunes a ReconnectClient.
type ReconnectConfig struct {
	// Dial opens a fresh client; required. It is invoked for the initial
	// connection and after every severed association, so it must be safe to
	// call repeatedly (e.g. close over Dial/NewClientConn with fixed
	// parameters).
	Dial func() (*Client, error)
	// BackoffBase is the first redial wait (default 50ms); each failed
	// attempt doubles it up to BackoffMax (default 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxAttempts bounds how many consecutive redials one operation may
	// trigger before giving up (default 10).
	MaxAttempts int
	// Jitter spreads each wait uniformly over [wait*(1-Jitter), wait]
	// (0 = none, default 0.5) so a thundering herd of reconnecting clients
	// decorrelates instead of re-stampeding the server in lockstep.
	Jitter float64
	// Seed makes the jitter sequence deterministic (0 derives one from the
	// global source).
	Seed int64
	// OnRedial, when non-nil, observes every backoff wait before it starts:
	// the attempt number (1-based), the wait about to be slept, and the
	// error that caused it. Must be safe for concurrent use.
	OnRedial func(attempt int, wait time.Duration, cause error)
}

// ReconnectStats counts a ReconnectClient's recovery activity.
type ReconnectStats struct {
	// Redials is the number of successful re-established associations
	// (the initial connection is not counted).
	Redials int64
	// BusyWaits counts waits honouring a StatusBusy retry-after hint.
	BusyWaits int64
	// Resumes counts streams resumed with ResumeLastPlay.
	Resumes int64
}

// lastPlay remembers enough of the most recent Play/PlayFrom to resume it
// after a reconnect: the receiver reports how far it got, ResumeLastPlay
// restarts the transmission from there.
type lastPlay struct {
	movie string
	addr  string
	from  int64
	count int64
}

// ReconnectClient wraps a Client with crash resilience: when an operation
// fails because the association died (server restart, partition, timeout),
// it redials with exponential backoff plus jitter, re-establishes the
// association, re-selects the movie the session had selected, and retries
// the operation. A server shedding load with StatusBusy is honoured by
// waiting out its retry-after hint before redialing.
//
// Stream resumption is explicit: the data plane's receiver knows how many
// frames actually arrived, so after a reconnect the application calls
// ResumeLastPlay with the receiver's contiguous progress and the stream
// restarts there — the MTP sync path makes the receiver continue seamlessly,
// each frame delivered exactly once.
//
// Methods are safe for use from one goroutine at a time, like Client's.
type ReconnectClient struct {
	cfg ReconnectConfig

	mu       sync.Mutex
	c        *Client // nil until connected / after Close
	closed   bool
	selected string
	last     *lastPlay
	rng      *rand.Rand

	redials   atomic.Int64
	busyWaits atomic.Int64
	resumes   atomic.Int64
}

// NewReconnectClient connects (with backoff) and returns the wrapper.
func NewReconnectClient(cfg ReconnectConfig) (*ReconnectClient, error) {
	if cfg.Dial == nil {
		return nil, errors.New("xmovie: ReconnectConfig.Dial is required")
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 10
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.5
	}
	if cfg.Jitter < 0 || cfg.Jitter > 1 {
		return nil, fmt.Errorf("xmovie: jitter %v outside 0..1", cfg.Jitter)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = rand.Int63()
	}
	r := &ReconnectClient{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	if err := r.connect(false); err != nil {
		return nil, err
	}
	return r, nil
}

// backoff returns the jittered wait for 0-based attempt n.
func (r *ReconnectClient) backoff(n int) time.Duration {
	wait := r.cfg.BackoffBase << uint(n)
	if wait <= 0 || wait > r.cfg.BackoffMax { // <<-overflow guards too
		wait = r.cfg.BackoffMax
	}
	if r.cfg.Jitter > 0 {
		r.mu.Lock()
		f := 1 - r.cfg.Jitter*r.rng.Float64()
		r.mu.Unlock()
		wait = time.Duration(float64(wait) * f)
	}
	return wait
}

// connect dials with backoff until a client is established (re-selecting
// the session's movie when restore is set) or attempts are exhausted.
func (r *ReconnectClient) connect(restore bool) error {
	var lastErr error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			wait := r.backoff(attempt - 1)
			if r.cfg.OnRedial != nil {
				r.cfg.OnRedial(attempt, wait, lastErr)
			}
			time.Sleep(wait)
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return ErrClosed
		}
		selected := r.selected
		r.mu.Unlock()

		c, err := r.cfg.Dial()
		if err != nil {
			lastErr = err
			continue
		}
		if restore && selected != "" {
			if _, _, err := c.Select(selected); err != nil {
				_ = c.Close()
				if resp, busy := busyResponse(err); busy {
					r.busyWait(resp)
					lastErr = err
					continue
				}
				if !retryable(err) {
					return fmt.Errorf("xmovie: reconnected but re-select %q failed: %w", selected, err)
				}
				lastErr = err
				continue
			}
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			_ = c.Close()
			return ErrClosed
		}
		r.c = c
		r.mu.Unlock()
		if restore {
			r.redials.Add(1)
		}
		return nil
	}
	return fmt.Errorf("xmovie: gave up after %d attempts: %w", r.cfg.MaxAttempts, lastErr)
}

// retryable reports whether err means the association (not the request) is
// the problem: severed, timed out, or never dialed.
func retryable(err error) bool {
	if errors.Is(err, ErrTimeout) || errors.Is(err, ErrClosed) {
		return true
	}
	// Application-level refusals carry an MCAM status and are terminal for
	// the request; everything else on a call path is transport trouble.
	var busy *busyErr
	return !errors.As(err, &busy) && !isStatusErr(err)
}

// busyErr marks a StatusBusy response folded into an error, carrying the
// server's retry-after hint.
type busyErr struct {
	resp *Response
}

func (b *busyErr) Error() string {
	return fmt.Sprintf("xmovie: server busy (retry after %dms)", b.resp.RetryAfterMs)
}

// statusErr marks any other non-OK response (terminal for the request).
type statusErr struct{ err error }

func (s *statusErr) Error() string { return s.err.Error() }
func (s *statusErr) Unwrap() error { return s.err }

func isStatusErr(err error) bool {
	var se *statusErr
	return errors.As(err, &se)
}

func busyResponse(err error) (*Response, bool) {
	var be *busyErr
	if errors.As(err, &be) {
		return be.resp, true
	}
	return nil, false
}

// busyWait sleeps out a StatusBusy retry-after hint (falling back to the
// base backoff when the server sent none), with the same jitter spread.
func (r *ReconnectClient) busyWait(resp *Response) {
	wait := r.cfg.BackoffBase
	if resp != nil && resp.RetryAfterMs > 0 {
		wait = time.Duration(resp.RetryAfterMs) * time.Millisecond
	}
	if r.cfg.Jitter > 0 {
		r.mu.Lock()
		// Spread busy retries over [wait, wait*(1+Jitter)]: never earlier
		// than the server asked, never synchronized with the other shed
		// clients.
		f := 1 + r.cfg.Jitter*r.rng.Float64()
		r.mu.Unlock()
		wait = time.Duration(float64(wait) * f)
	}
	r.busyWaits.Add(1)
	time.Sleep(wait)
}

// call runs op against the live client, redialing and retrying on severed
// associations and busy servers. op must classify its own response via
// classify (so busy/terminal statuses are distinguishable from transport
// failures).
func (r *ReconnectClient) call(op func(c *Client) error) error {
	var lastErr error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return ErrClosed
		}
		c := r.c
		r.mu.Unlock()
		if c == nil {
			if err := r.connect(true); err != nil {
				return err
			}
			continue
		}
		err := op(c)
		if err == nil {
			return nil
		}
		lastErr = err
		if resp, busy := busyResponse(err); busy {
			// The association is a shedding responder, not a session:
			// drop it, wait out the hint, dial fresh.
			r.dropClient(c)
			r.busyWait(resp)
			continue
		}
		if !retryable(err) {
			var se *statusErr
			if errors.As(err, &se) {
				return se.err
			}
			return err
		}
		r.dropClient(c)
		if err := r.connect(true); err != nil {
			return err
		}
	}
	return fmt.Errorf("xmovie: gave up after %d attempts: %w", r.cfg.MaxAttempts, lastErr)
}

// dropClient closes and forgets c if it is still the current client.
func (r *ReconnectClient) dropClient(c *Client) {
	r.mu.Lock()
	if r.c == c {
		r.c = nil
	}
	r.mu.Unlock()
	_ = c.Close()
}

// classify folds a non-OK response into a typed error so call can
// distinguish busy (redial after hint) from terminal refusals.
func classify(resp *Response, err error) error {
	if err != nil {
		if resp != nil && resp.Status == StatusBusy {
			return &busyErr{resp: resp}
		}
		if resp != nil {
			return &statusErr{err: err}
		}
		return err
	}
	return nil
}

// doReq performs one raw request through the retry loop.
func (r *ReconnectClient) doReq(req *Request) (*Response, error) {
	var resp *Response
	err := r.call(func(c *Client) error {
		// Requests are re-encoded per attempt; InvokeID is assigned by the
		// client, so reusing the struct across associations is safe.
		rr, err := c.Call(req)
		if err != nil {
			return err
		}
		if !rr.OK() {
			return classify(rr, fmt.Errorf("xmovie: %s: %s (%s)", req.Op, rr.Status, rr.Diagnostic))
		}
		resp = rr
		return nil
	})
	return resp, err
}

// Select opens a movie for the session; after any reconnect the selection
// is re-established automatically before operations retry.
func (r *ReconnectClient) Select(name string) (length int64, frameRate int64, err error) {
	resp, err := r.doReq(&Request{Op: OpSelect, Movie: name})
	if err != nil {
		return 0, 0, err
	}
	r.mu.Lock()
	r.selected = name
	r.mu.Unlock()
	return resp.Length, resp.FrameRate, nil
}

// List returns the server's movie names.
func (r *ReconnectClient) List() ([]string, error) {
	resp, err := r.doReq(&Request{Op: OpListMovies})
	if err != nil {
		return nil, err
	}
	return resp.Movies, nil
}

// Play starts streaming a movie to streamAddr and remembers it for
// ResumeLastPlay.
func (r *ReconnectClient) Play(name, streamAddr string) (int64, error) {
	return r.PlayFrom(name, streamAddr, 0, 0)
}

// PlayFrom starts streaming from a position with an optional count and
// remembers the play for ResumeLastPlay.
func (r *ReconnectClient) PlayFrom(name, streamAddr string, position, count int64) (int64, error) {
	resp, err := r.doReq(&Request{Op: OpPlay, Movie: name, StreamAddr: streamAddr,
		Position: position, Count: count})
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	r.last = &lastPlay{movie: name, addr: streamAddr, from: position, count: count}
	r.mu.Unlock()
	return resp.StreamID, nil
}

// ResumeLastPlay restarts the most recent Play/PlayFrom at acked — the
// receiver's contiguous progress, tracked from the sequence numbers its
// deliver callback has seen — after an interruption. A count-bounded play keeps its original end position, so
// the resumed stream delivers exactly the frames the interruption cost. The
// receiver resynchronizes via MTP's sync flag; together that makes the
// delivered frame sequence identical to an uninterrupted run.
func (r *ReconnectClient) ResumeLastPlay(acked int64) (int64, error) {
	r.mu.Lock()
	lp := r.last
	r.mu.Unlock()
	if lp == nil {
		return 0, errors.New("xmovie: no play to resume")
	}
	if acked < lp.from {
		acked = lp.from
	}
	count := lp.count
	if count > 0 {
		count = lp.from + lp.count - acked
		if count <= 0 {
			return 0, errors.New("xmovie: play already complete")
		}
	}
	id, err := r.PlayFrom(lp.movie, lp.addr, acked, count)
	if err == nil {
		r.resumes.Add(1)
	}
	return id, err
}

// Stop cancels a stream and returns the position reached. Stopping clears
// the remembered play.
func (r *ReconnectClient) Stop(streamID int64) (int64, error) {
	resp, err := r.doReq(&Request{Op: OpStop, StreamID: streamID})
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	r.last = nil
	r.mu.Unlock()
	return resp.Position, nil
}

// SeekTo repositions a live stream (see Client.SeekTo).
func (r *ReconnectClient) SeekTo(streamID, position int64) (int64, error) {
	resp, err := r.doReq(&Request{Op: OpSeek, StreamID: streamID, Position: position})
	if err != nil {
		return 0, err
	}
	return resp.Position, nil
}

// AwaitEvent waits for the next stream event on the current association.
// Events do not survive a reconnect (they belong to the dead association's
// streams), so a severed association surfaces ErrClosed here rather than
// redialing — the application decides whether its stream needs resuming.
func (r *ReconnectClient) AwaitEvent(timeout time.Duration) (Event, error) {
	r.mu.Lock()
	c := r.c
	r.mu.Unlock()
	if c == nil {
		return Event{}, ErrClosed
	}
	return c.AwaitEvent(timeout)
}

// Client returns the current underlying client (nil while disconnected),
// for operations the wrapper does not mediate.
func (r *ReconnectClient) Client() *Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.c
}

// Stats snapshots the recovery counters.
func (r *ReconnectClient) Stats() ReconnectStats {
	return ReconnectStats{
		Redials:   r.redials.Load(),
		BusyWaits: r.busyWaits.Load(),
		Resumes:   r.resumes.Load(),
	}
}

// Close releases the association and stops all future retries.
func (r *ReconnectClient) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	c := r.c
	r.c = nil
	r.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}
